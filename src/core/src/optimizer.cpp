#include "rlc/core/optimizer.hpp"

#include "rlc/base/cancel.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

#include "rlc/core/exact_delay.hpp"
#include "rlc/core/optimize_api.hpp"
#include "rlc/math/brent.hpp"
#include "rlc/math/nelder_mead.hpp"
#include "rlc/math/newton.hpp"
#include "rlc/tline/coupled_line.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "status_boundary.hpp"

namespace rlc::core {

namespace {

using cplx = std::complex<double>;

struct PoleSens {
  cplx s1, s2;
  cplx ds1_dh, ds2_dh, ds1_dk, ds2_dk;
  double disc = 0.0;
  bool valid = false;
};

/// Poles and their analytic sensitivities to h and k:
///   ds/dx = [ -b1' +- (b1 b1' - 2 b2') / D ] / (2 b2) - s b2' / b2,
/// with D = sqrt(b1^2 - 4 b2) (complex).  Invalid when |D| is so small that
/// the 1/D terms lose all significance (near-critically-damped; the
/// optimizer falls back to the derivative-free path there).
PoleSens pole_sensitivities(const Repeater& rep, const tline::LineParams& line,
                            double h, double k) {
  PoleSens ps;
  const PadeCoeffs pc = pade_coeffs_hk(rep, line, h, k);
  const PadeDerivs pd = pade_derivs_hk(rep, line, h, k);
  const double b1 = pc.b1, b2 = pc.b2;
  ps.disc = b1 * b1 - 4.0 * b2;
  const cplx D = std::sqrt(cplx{ps.disc, 0.0});
  const double scale = b1 * b1 + 4.0 * b2;
  if (std::abs(D) * std::abs(D) < 1e-12 * scale) {
    ps.valid = false;
    return ps;
  }
  ps.s1 = (-b1 + D) / (2.0 * b2);
  ps.s2 = (-b1 - D) / (2.0 * b2);
  const auto dsd = [&](double db1, double db2, const cplx& s, double sign) {
    return (-db1 + sign * (b1 * db1 - 2.0 * db2) / D) / (2.0 * b2) -
           s * db2 / b2;
  };
  ps.ds1_dh = dsd(pd.db1_dh, pd.db2_dh, ps.s1, +1.0);
  ps.ds2_dh = dsd(pd.db1_dh, pd.db2_dh, ps.s2, -1.0);
  ps.ds1_dk = dsd(pd.db1_dk, pd.db2_dk, ps.s1, +1.0);
  ps.ds2_dk = dsd(pd.db1_dk, pd.db2_dk, ps.s2, -1.0);
  ps.valid = true;
  return ps;
}

/// Map the (analytically real-or-imaginary) complex residual to its
/// meaningful real component given the damping regime.
double realify(const cplx& g, double disc) {
  return disc < 0.0 ? g.imag() : g.real();
}

}  // namespace

StationarityResiduals stationarity_residuals(const Repeater& rep,
                                             const tline::LineParams& line,
                                             double h, double k, double f) {
  StationarityResiduals out;
  if (!(h > 0.0) || !(k > 0.0)) return out;
  const PoleSens ps = pole_sensitivities(rep, line, h, k);
  if (!ps.valid) return out;
  DelayOptions dopts;
  dopts.f = f;
  const TwoPole sys(pade_coeffs_hk(rep, line, h, k));
  const DelayResult dr = threshold_delay(sys, dopts);
  if (!dr.converged) return out;
  const double tau = dr.tau;
  const cplx e1 = std::exp(ps.s1 * tau);
  const cplx e2 = std::exp(ps.s2 * tau);
  // Eq. (7): stationarity in h (with d tau/d h = tau / h substituted).
  const cplx g1 = (1.0 - f) * (ps.ds2_dh - ps.ds1_dh) - ps.ds2_dh * e1 +
                  ps.ds1_dh * e2 -
                  ps.s2 * tau * (ps.ds1_dh + ps.s1 / h) * e1 +
                  ps.s1 * tau * (ps.ds2_dh + ps.s2 / h) * e2;
  // Eq. (8): stationarity in k (with d tau/d k = 0 substituted).
  const cplx g2 = (1.0 - f) * (ps.ds2_dk - ps.ds1_dk) - ps.ds2_dk * e1 -
                  ps.s2 * tau * ps.ds1_dk * e1 + ps.ds1_dk * e2 +
                  ps.s1 * tau * ps.ds2_dk * e2;
  out.g1 = realify(g1, ps.disc);
  out.g2 = realify(g2, ps.disc);
  out.tau = tau;
  out.valid = std::isfinite(out.g1) && std::isfinite(out.g2);
  return out;
}

double delay_per_length(const Repeater& rep, const tline::LineParams& line,
                        double h, double k, double f) {
  DelayOptions dopts;
  dopts.f = f;
  const DelayResult dr = segment_delay(rep, line, h, k, dopts);
  if (!dr.converged) {
    throw std::runtime_error("delay_per_length: delay solve failed");
  }
  return dr.tau / h;
}

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

OptimResult nelder_mead_fallback(const Repeater& rep,
                                 const tline::LineParams& line,
                                 const OptimOptions& opts, double h_ref,
                                 double k_ref, double u0, double w0) {
  RLC_TRACE_SPAN("nelder_mead_fallback");
  static const int kFallbacks =
      obs::Registry::global().counter("optimizer.nm_fallbacks");
  obs::Registry::global().add(kFallbacks);
  const auto objective = [&](const std::vector<double>& x) -> double {
    const double h = x[0] * h_ref;
    const double k = x[1] * k_ref;
    if (!(h > 0.0) || !(k > 0.0)) return kNaN;
    DelayOptions dopts;
    dopts.f = opts.f;
    const DelayResult dr = segment_delay(rep, line, h, k, dopts);
    if (!dr.converged) return kNaN;
    return dr.tau / h;
  };
  rlc::math::NelderMeadOptions nm;
  nm.max_iterations = 4000;
  nm.f_tolerance = 1e-13;
  nm.x_tolerance = 1e-10;
  nm.initial_step = 0.15;
  const auto sol = rlc::math::nelder_mead(objective, {u0, w0}, nm);
  OptimResult res;
  res.method = OptimMethod::kNelderMead;
  res.h = sol.x[0] * h_ref;
  res.k = sol.x[1] * k_ref;
  res.converged = sol.converged && std::isfinite(sol.fx);
  if (res.converged) {
    DelayOptions dopts;
    dopts.f = opts.f;
    const DelayResult dr = segment_delay(rep, line, res.h, res.k, dopts);
    res.tau = dr.tau;
    res.delay_per_length = dr.tau / res.h;
  }
  return res;
}

}  // namespace

namespace {

/// Newton solves a stationarity system, which is also satisfied by saddle
/// points and maxima of tau/h; accept a candidate only if small
/// perturbations do not lower the objective.
bool is_local_minimum(const Repeater& rep, const tline::LineParams& line,
                      double h, double k, double f) {
  double base;
  try {
    base = delay_per_length(rep, line, h, k, f);
  } catch (const std::exception&) {
    return false;
  }
  for (const double eps : {1e-3, -1e-3}) {
    try {
      if (delay_per_length(rep, line, h * (1.0 + eps), k, f) <
          base * (1.0 - 1e-7)) {
        return false;
      }
      if (delay_per_length(rep, line, h, k * (1.0 + eps), f) <
          base * (1.0 - 1e-7)) {
        return false;
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

}  // namespace

OptimResult optimize_rlc(const Repeater& rep, const tline::LineParams& line,
                         const OptimOptions& opts) {
  RLC_TRACE_SPAN("optimize_rlc");
  static const int kCalls = obs::Registry::global().counter("optimizer.calls");
  obs::Registry::global().add(kCalls);
  line.validate();
  // Reference scales from the Elmore optimum: Newton operates on
  // (u, w) = (h/h_ref, k/k_ref) so both variables are O(1).
  const RcOptimum rc = rc_optimum(rep, line.r, line.c);
  const double h_ref = rc.h, k_ref = rc.k;
  const double u0 = (opts.h0 > 0.0 ? opts.h0 : 0.9 * rc.h) / h_ref;
  const double w0 = (opts.k0 > 0.0 ? opts.k0 : 0.9 * rc.k) / k_ref;

  // Residual normalization: constant row scales computed at the initial
  // point (a constant rescaling leaves the Newton iterates unchanged but
  // makes the convergence test dimensionless).
  double n1 = 1.0, n2 = 1.0;
  {
    const auto sr0 =
        stationarity_residuals(rep, line, u0 * h_ref, w0 * k_ref, opts.f);
    if (sr0.valid) {
      n1 = std::max(std::abs(sr0.g1), 1e-300);
      n2 = std::max(std::abs(sr0.g2), 1e-300);
    }
  }

  const rlc::math::Fn2 residual = [&](const std::array<double, 2>& x) {
    const auto sr =
        stationarity_residuals(rep, line, x[0] * h_ref, x[1] * k_ref, opts.f);
    if (!sr.valid) return std::array<double, 2>{kNaN, kNaN};
    return std::array<double, 2>{sr.g1 / n1, sr.g2 / n2};
  };

  rlc::math::NewtonOptions nopts;
  nopts.max_iterations = opts.max_iterations;
  nopts.f_tolerance = opts.residual_tolerance;
  nopts.x_tolerance = 1e-12;
  nopts.damped = true;
  const auto jac = rlc::math::fd_jacobian_2d(residual, 1e-6);
  const auto sol = rlc::math::newton_2d(residual, jac, {u0, w0}, nopts,
                                        std::array<double, 2>{1e-4, 1e-3});

  OptimResult res;
  res.method = OptimMethod::kNewton;
  res.newton_iterations = sol.iterations;
  if (sol.converged &&
      is_local_minimum(rep, line, sol.x[0] * h_ref, sol.x[1] * k_ref, opts.f)) {
    res.h = sol.x[0] * h_ref;
    res.k = sol.x[1] * k_ref;
    DelayOptions dopts;
    dopts.f = opts.f;
    const DelayResult dr = segment_delay(rep, line, res.h, res.k, dopts);
    if (dr.converged) {
      res.tau = dr.tau;
      res.delay_per_length = dr.tau / res.h;
      res.converged = true;
      return res;
    }
  }
  if (!opts.allow_fallback) {
    res.converged = false;
    return res;
  }
  // Newton failed or landed on a non-minimal stationary point: restart the
  // derivative-free search from the original guess, not the rejected point.
  OptimResult fb = nelder_mead_fallback(rep, line, opts, h_ref, k_ref, u0, w0);
  fb.newton_iterations = sol.iterations;
  return fb;
}

OptimResult optimize_rlc(const Technology& tech, double l,
                         const OptimOptions& opts) {
  return optimize_rlc(tech.rep, tech.line(l), opts);
}

NoiseOptimResult optimize_rlc_noise_constrained(
    const Technology& tech, double l, const NoiseConstraintOptions& c) {
  if (c.conductors < 2 || c.conductors > 8) {
    throw std::invalid_argument(
        "optimize_rlc_noise_constrained: conductors must be in 2..8");
  }
  if (!(c.cc >= 0.0)) {
    throw std::invalid_argument(
        "optimize_rlc_noise_constrained: cc must be >= 0");
  }
  if (!(std::abs(c.km) < 1.0)) {
    throw std::invalid_argument(
        "optimize_rlc_noise_constrained: |km| must be < 1");
  }
  if (!(c.vmax > 0.0)) {
    throw std::invalid_argument(
        "optimize_rlc_noise_constrained: vmax must be > 0");
  }
  RLC_TRACE_SPAN("optimize_noise_constrained");

  const tline::LineParams line = tech.line(l);
  // Quiet neighbours: every conductor sees the full Miller-1 coupling
  // capacitance (d_max * cc in the homogenized bus) on top of its self c.
  const double d_max = c.conductors >= 3 ? 2.0 : 1.0;
  tline::LineParams eff = line;
  eff.c += d_max * c.cc;

  NoiseOptimResult out;
  const OptimResult un = optimize_rlc(tech.rep, eff, c.optim);
  out.sizing = un;
  if (!un.converged) return out;

  const tline::CoupledLine bus =
      tline::symmetric_bus(line, c.cc, c.km, c.conductors);
  const std::size_t aggressor = c.conductors / 2;  // center conductor
  const std::size_t victim = 0;                    // edge conductor
  CoupledExcitation exc{std::vector<double>(c.conductors, 0.0),
                        std::vector<double>(c.conductors, 0.0)};
  exc.target[aggressor] = 1.0;

  const auto noise_at = [&](double h, double k) {
    const DelayResult d = segment_delay(tech.rep, eff, h, k);
    if (!d.converged) {
      throw std::runtime_error(
          "optimize_rlc_noise_constrained: delay solve failed");
    }
    return exact_coupled_victim_noise(bus, h, tech.rep.scaled(k), exc,
                                      victim, d.tau)
        .peak;
  };

  out.peak_noise = noise_at(un.h, un.k);
  if (out.peak_noise <= c.vmax) {
    out.converged = true;
    return out;
  }
  out.constraint_active = true;

  // Active-set outer loop on the constraint boundary.  Upsized repeaters
  // hold the quiet victim at lower driver impedance, so along the per-k
  // delay-optimal segmentation h_opt(k) the victim peak noise falls
  // strictly with k while delay/length rises for k above the unconstrained
  // optimum.  The constrained optimum is therefore the smallest feasible
  // repeater size: the boundary root of peak_noise(h_opt(k), k) = vmax.
  const auto h_opt = [&](double k) -> double {
    const auto hopt = rlc::math::brent_minimize(
        [&](double h) {
          return delay_per_length(tech.rep, eff, h, k, c.optim.f);
        },
        0.1 * un.h, 10.0 * un.h, 1e-4 * un.h);
    return hopt.converged ? hopt.x : un.h;
  };
  const auto boundary_noise = [&](double k) {
    return noise_at(h_opt(k), k) - c.vmax;
  };

  // Bracket by doubling: the unconstrained k is infeasible (checked above);
  // walk up until the budget is met or the upsizing range is exhausted.
  const double k_cap = 64.0 * un.k;
  double k_hi = 2.0 * un.k;
  while (k_hi < k_cap && boundary_noise(k_hi) > 0.0) k_hi *= 2.0;
  if (boundary_noise(k_hi) > 0.0) {
    // Budget unreachable by sizing alone: report the closest point.
    out.sizing.k = k_hi;
    const double h = h_opt(k_hi);
    out.sizing.h = h;
    const DelayResult dr = segment_delay(tech.rep, eff, h, k_hi);
    if (dr.converged) {
      out.sizing.tau = dr.tau;
      out.sizing.delay_per_length = dr.tau / h;
    }
    out.peak_noise = noise_at(h, k_hi);
    return out;  // converged stays false
  }
  const auto kr = rlc::math::brent_root(boundary_noise, 0.5 * k_hi, k_hi,
                                        1e-4 * un.k);
  if (!kr.converged) return out;

  const double ks = kr.x;
  const double hs = h_opt(ks);
  out.sizing.h = hs;
  out.sizing.k = ks;
  const DelayResult dr = segment_delay(tech.rep, eff, hs, ks);
  if (!dr.converged) return out;
  out.sizing.tau = dr.tau;
  out.sizing.delay_per_length = dr.tau / hs;
  out.peak_noise = noise_at(hs, ks);
  // The Brent root can land a hair on the infeasible side; nudge up to the
  // feasible side of the bracket if so.
  if (out.peak_noise > c.vmax) {
    const double k_up = std::min(ks * (1.0 + 1e-3) + 1e-4 * un.k, k_hi);
    const double h_up = h_opt(k_up);
    const double noise_up = noise_at(h_up, k_up);
    if (noise_up <= c.vmax) {
      out.sizing.k = k_up;
      out.sizing.h = h_up;
      const DelayResult du = segment_delay(tech.rep, eff, h_up, k_up);
      if (du.converged) {
        out.sizing.tau = du.tau;
        out.sizing.delay_per_length = du.tau / h_up;
      }
      out.peak_noise = noise_up;
    }
  }
  out.converged = out.peak_noise <= c.vmax * (1.0 + 1e-6);
  return out;
}

std::vector<OptimResult> optimize_rlc_sweep(const Technology& tech,
                                            const std::vector<double>& l_values,
                                            const OptimOptions& opts) {
  std::vector<OptimResult> out;
  out.reserve(l_values.size());
  OptimOptions cur = opts;
  for (double l : l_values) {
    const OptimResult r = optimize_rlc(tech, l, cur);
    out.push_back(r);
    if (r.converged) {
      // Warm-start the next solve (continuation in l).
      cur.h0 = r.h;
      cur.k0 = r.k;
    }
  }
  return out;
}

namespace {

/// One timed, counter-recorded point solve.
OptimResult solve_instrumented(const Technology& tech, double l,
                               const OptimOptions& opts,
                               exec::Counters* counters) {
  const exec::StopWatch sw;
  const OptimResult r = optimize_rlc(tech, l, opts);
  if (counters) {
    counters->record_solve(r.newton_iterations,
                           r.method == OptimMethod::kNelderMead, !r.converged,
                           sw.seconds());
  }
  return r;
}

/// Serial warm-start continuation over l_values[begin:end) starting from
/// `start`, writing into out[begin:end).
void continue_serially(const Technology& tech,
                       const std::vector<double>& l_values, std::size_t begin,
                       std::size_t end, OptimOptions start,
                       exec::Counters* counters, std::vector<OptimResult>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    const OptimResult r = solve_instrumented(tech, l_values[i], start, counters);
    out[i] = r;
    if (r.converged) {
      start.h0 = r.h;
      start.k0 = r.k;
    }
  }
}

}  // namespace

std::vector<OptimResult> optimize_rlc_sweep(const Technology& tech,
                                            const std::vector<double>& l_values,
                                            const SweepOptions& sweep) {
  const std::size_t n = l_values.size();
  std::vector<OptimResult> out(n);
  if (n == 0) return out;
  exec::ThreadPool& pool = sweep.pool ? *sweep.pool : exec::default_pool();
  const std::size_t chunk = sweep.chunk > 0 ? sweep.chunk : 1;
  // No pool-size shortcut here: a 1-thread pool must take the same
  // chunk-seeded path as any other size, or results would depend on the
  // thread count (the scenario determinism tests pin this down).
  if (!sweep.parallel || n <= chunk) {
    continue_serially(tech, l_values, 0, n, sweep.optim, sweep.counters, out);
    return out;
  }

  // Phase 1 (serial): continuation over the chunk-start points only; each
  // result seeds one chunk and doubles as that point's final answer, so the
  // total solve count equals the serial path's.
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  std::vector<OptimResult> seeds(n_chunks);
  {
    OptimOptions cur = sweep.optim;
    for (std::size_t j = 0; j < n_chunks; ++j) {
      const OptimResult r =
          solve_instrumented(tech, l_values[j * chunk], cur, sweep.counters);
      seeds[j] = r;
      if (r.converged) {
        cur.h0 = r.h;
        cur.k0 = r.k;
      }
    }
  }

  // Phase 2 (parallel): chunks are independent given their seeds; each
  // writes a disjoint slice of `out`, so ordering is by construction.
  pool.parallel_for(
      n_chunks,
      [&](std::size_t j) {
        const std::size_t begin = j * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        out[begin] = seeds[j];
        OptimOptions start = sweep.optim;
        if (seeds[j].converged) {
          start.h0 = seeds[j].h;
          start.k0 = seeds[j].k;
        }
        continue_serially(tech, l_values, begin + 1, end, start, sweep.counters,
                          out);
      },
      /*grain=*/1);
  return out;
}

rlc::Status validate_optim_request(double l, const OptimOptions& opts) {
  if (!std::isfinite(l) || l < 0.0) {
    return rlc::Status::invalid_argument(
        "inductance l must be finite and >= 0");
  }
  if (!(opts.f > 0.0 && opts.f < 1.0)) {
    return rlc::Status::invalid_argument("threshold f must be in (0, 1)");
  }
  if (opts.max_iterations < 1) {
    return rlc::Status::invalid_argument("max_iterations must be >= 1");
  }
  if (!(opts.residual_tolerance > 0.0)) {
    return rlc::Status::invalid_argument("residual_tolerance must be > 0");
  }
  return rlc::Status::ok();
}

rlc::StatusOr<OptimResult> try_optimize_rlc(const Technology& tech, double l,
                                            const OptimOptions& opts) {
  // Thin wrapper over the unified entry point (optimize_api.hpp): a
  // delay-objective scalar request dispatches to optimize_rlc above, so the
  // sizing is bit-identical to what this function always returned.
  OptimizeRequest req;
  req.l = l;
  req.optim = opts;
  rlc::StatusOr<OptimizeResponse> resp = optimize(tech, req);
  if (!resp.is_ok()) return resp.status();
  return resp->sizing;
}

rlc::StatusOr<std::vector<OptimResult>> try_optimize_rlc_sweep(
    const Technology& tech, const std::vector<double>& l_values,
    const SweepOptions& sweep) {
  for (double l : l_values) {
    if (rlc::Status s = validate_optim_request(l, sweep.optim); !s.is_ok()) {
      return s;
    }
  }
  using Out = std::vector<OptimResult>;
  return internal::at_boundary<Out>([&]() -> rlc::StatusOr<Out> {
    return optimize_rlc_sweep(tech, l_values, sweep);
  });
}

}  // namespace rlc::core
