#pragma once

/// \file coupled_line.hpp
/// N-conductor coupled RLC line (per-unit-length R scalar + L/C matrices)
/// and its modal decomposition into independent scalar lines.
///
/// The coupled telegrapher equations  d2V/dx2 = (rI + sL)(sC) V  decouple
/// exactly (at every frequency) when [L, C] = 0: an orthonormal W that
/// diagonalizes both maps each mode j onto a *scalar* line (r, l_j, c_j)
/// that reuses Eq. (1), the memoizing TransferEvaluator and the SoA batch
/// kernel unchanged.  Because the driver/load boundary (Rs, Cp, Cl) is
/// scalar-times-identity it is invariant under W, so each mode also keeps
/// the scalar DriverLoad.  Physical far-end waveforms are recomposed as
/// V(t) = V(0-) + W diag(v_j(t)) W^T (U(0+) - V(0-)).
///
/// `symmetric_bus` builds the homogenized bus used by the xtalk scenarios:
/// L = l (I + km A) and C = (c + d_max cc) I - cc A with A the path
/// adjacency and d_max = min(n-1, 2).  Both are polynomials in A, so they
/// commute by construction; edge conductors carry a compensating cc to
/// ground so every conductor sees the same total capacitance (a shielded
/// bus).  For n = 2 this is exactly the two-ladder topology of
/// rlc::ringosc::add_coupled_ladders; n = 1 degenerates to LineParams.

#include <cstddef>
#include <vector>

#include "rlc/linalg/matrix.hpp"
#include "rlc/tline/line.hpp"

namespace rlc::tline {

/// Per-unit-length description of n >= 1 coupled conductors.
struct CoupledLine {
  double r = 0.0;                 ///< series resistance [Ohm/m], per conductor
  linalg::MatrixD inductance;     ///< L matrix [H/m], symmetric
  linalg::MatrixD capacitance;    ///< Maxwell C matrix [F/m], symmetric

  std::size_t conductors() const { return inductance.rows(); }

  /// Throws std::domain_error unless r > 0, both matrices are square,
  /// symmetric, of matching size >= 1, diag(C) > 0 and diag(L) >= 0.
  void validate() const;
};

/// Homogenized n-conductor bus over a scalar base line: every conductor has
/// the base (r, l, c), nearest neighbours couple through cc [F/m] and
/// mutual-inductance ratio km (dimensionless, |km| < 1).  Requires
/// 1 <= n <= 8, cc >= 0 (ignored for n = 1).
CoupledLine symmetric_bus(const LineParams& base, double cc, double km,
                          std::size_t n);

/// The modal picture: K independent scalar lines plus the orthonormal
/// change of basis.  Column j of `vectors` is the physical pattern of mode
/// j; modes are sorted by ascending modal capacitance (for the n = 2 bus:
/// mode 0 = even/in-phase, mode 1 = odd/anti-phase).
struct ModalDecomposition {
  std::vector<LineParams> modes;
  linalg::MatrixD vectors;

  std::size_t size() const { return modes.size(); }

  /// W^T x: physical excitation pattern -> per-mode weights.
  std::vector<double> modal_weights(const std::vector<double>& x) const;

  /// W m: per-mode values -> physical conductor values.
  std::vector<double> recompose(const std::vector<double>& m) const;
};

/// Diagonalize a coupled line.  Throws std::runtime_error if [L, C] != 0
/// (no frequency-independent modal basis exists) and std::domain_error if a
/// modal line is unphysical (e.g. |km| large enough to drive a modal
/// inductance negative).
ModalDecomposition modal_decomposition(const CoupledLine& line);

}  // namespace rlc::tline
