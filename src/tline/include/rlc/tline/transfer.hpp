#pragma once

/// \file transfer.hpp
/// Exact Laplace-domain transfer function of the driver-interconnect-load
/// structure of Figure 1 / Eq. (1):
///
///   H(s) = 1 / { [1 + s Rs (Cp + Cl)] cosh(theta h)
///                + [Rs/Z0 + s Cl Z0 + s^2 Rs Cp Cl Z0] sinh(theta h) }
///
/// Two implementations are provided: the closed form of Eq. (1) and the
/// ABCD cascade of the four stages; they agree to machine precision and the
/// test suite enforces this.

#include <complex>

#include "rlc/tline/abcd.hpp"
#include "rlc/tline/line.hpp"

namespace rlc::tline {

/// Lumped driver/load around the distributed line (Figure 1).
struct DriverLoad {
  double rs_eff = 0.0;  ///< driver series resistance Rs = r_s / k [Ohm]
  double cp_eff = 0.0;  ///< driver output parasitic capacitance Cp = c_p * k [F]
  double cl_eff = 0.0;  ///< receiver input capacitance Cl = c_0 * k [F]
};

/// Exact H(s) per Eq. (1).
///
/// Well-defined for all s != 0 in the right half plane and on the imaginary
/// axis; the apparent singularity of Z0 at s -> 0 cancels (Rs/Z0 sinh and
/// s Cl Z0 sinh are both analytic at 0) — callers evaluating near s = 0
/// should use exact_transfer_dc_safe().
std::complex<double> exact_transfer(const LineParams& line, double h,
                                    const DriverLoad& dl,
                                    std::complex<double> s);

/// Exact H(s) written in the singularity-free form using
/// sinh(theta h)/Z0 = s c h * sinhc(theta h) and Z0 sinh(theta h) =
/// (r + s l) h * sinhc(theta h), valid at and near s = 0 (H(0) = 1).
std::complex<double> exact_transfer_dc_safe(const LineParams& line, double h,
                                            const DriverLoad& dl,
                                            std::complex<double> s);

/// H(s) assembled from the ABCD cascade (cross-check path).
std::complex<double> abcd_transfer(const LineParams& line, double h,
                                   const DriverLoad& dl,
                                   std::complex<double> s);

/// Exact H(s) with a one-parameter skin-effect model: the series impedance
/// per unit length becomes z(s) = r sqrt(1 + s/w_s) + s l, which is r at low
/// frequency and follows the sqrt(f) resistance rise (with the correct
/// R ~ X asymptote) above the crossover w_s.  Pass w_s from
/// skin_crossover_angular_frequency(); the sqrt branch is taken with
/// positive real part so the line stays passive.
std::complex<double> exact_transfer_skin(const LineParams& line, double h,
                                         const DriverLoad& dl, double w_skin,
                                         std::complex<double> s);

/// Crossover angular frequency where the skin depth equals half the smaller
/// conductor cross-section dimension: w_s = 8 rho / (mu0 d^2), d = min(w, t).
/// Below w_s the DC resistance model is accurate.
double skin_crossover_angular_frequency(double resistivity, double width,
                                        double thickness);

}  // namespace rlc::tline
