#pragma once

/// \file batch_evaluator.hpp
/// BatchTransferEvaluator: the structure-of-arrays counterpart of
/// TransferEvaluator — evaluates the exact Eq. (1) transfer function at a
/// whole span of s nodes in one pass.  This is the cache-miss hot path of
/// the exact-waveform engine: a cold Talbot contour needs all M nodes
/// fresh, so per-point memoization only adds hash traffic while the
/// transcendental core (one complex exp per node) vectorizes 4-wide.
///
/// Against calling TransferEvaluator::transfer in a loop it
///   * keeps the hoisted denominator invariants (same construction),
///   * batches every cosh/sinhc through ONE rlc::simd::cexp_pd call per
///     block (AVX2+FMA when the host has it, scalar libm otherwise —
///     selectable per instance for head-to-head benches),
///   * skips the memo table entirely: no hashing, no allocation, no
///     std::function dispatch anywhere on the path.
///
/// Accuracy: the scalar level matches TransferEvaluator to a few ulp (same
/// formulas, different division/sqrt sequencing); the AVX2 level matches
/// the scalar level to ~1 ulp.  The test suite pins both agreements at
/// 1e-12 relative, including the theta*h -> 0 series guard, denormal and
/// huge-|s| edge cases.

#include <complex>
#include <cstddef>

#include "rlc/base/simd.hpp"
#include "rlc/tline/line.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::tline {

class BatchTransferEvaluator {
 public:
  /// Validates the line (LineParams::validate) and hoists the invariants.
  /// `level` selects the kernel (default: runtime-detected, RLC_SIMD-aware).
  BatchTransferEvaluator(const LineParams& line, double h, const DriverLoad& dl,
                         simd::Level level = simd::active_level());

  /// Flushes the evaluation tally into the global metrics registry
  /// ("tline.transfer.evals" / "tline.transfer.batch_passes").
  ~BatchTransferEvaluator();

  /// Exact H(s) (dc-safe form) at n SoA nodes: h_re/h_im[i] = H(s_i).
  void transfer(const double* s_re, const double* s_im, double* h_re,
                double* h_im, std::size_t n) const;

  /// Step-input transform H(s)/s at n SoA nodes (what Talbot inverts).
  void step(const double* s_re, const double* s_im, double* f_re,
            double* f_im, std::size_t n) const;

  /// Convenience single-point probes (tests / spot checks).
  std::complex<double> transfer(std::complex<double> s) const;
  std::complex<double> step(std::complex<double> s) const;

  simd::Level level() const noexcept { return level_; }

  /// Total nodes evaluated so far (every node is fresh — no memo).
  std::size_t evaluations() const noexcept { return evaluations_; }
  /// Batch passes (transfer/step calls) so far.
  std::size_t passes() const noexcept { return passes_; }

 private:
  void eval(const double* s_re, const double* s_im, double* out_re,
            double* out_im, std::size_t n, bool divide_by_s) const;

  // Hoisted invariants of the dc-safe denominator (TransferEvaluator's).
  double rs_cp_cl_ = 0.0;   ///< Rs (Cp + Cl)
  double rs_ch_ = 0.0;      ///< Rs c h
  double cl_ = 0.0;         ///< Cl
  double rs_cp_cl2_ = 0.0;  ///< Rs Cp Cl
  double ch_ = 0.0;         ///< c h
  double lh_ = 0.0;         ///< l h
  double rh_ = 0.0;         ///< r h

  simd::Level level_;
  mutable std::size_t evaluations_ = 0;
  mutable std::size_t passes_ = 0;
};

}  // namespace rlc::tline
