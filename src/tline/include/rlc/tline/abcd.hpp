#pragma once

/// \file abcd.hpp
/// ABCD (chain) two-port matrices over complex frequency.  The paper builds
/// the driver-interconnect-load transfer function (Eq. 1) as the cascade
///   series(Rs) * shunt(s*Cp) * rlc_line(theta*h, Z0) * shunt(s*Cl).

#include <complex>

#include "rlc/tline/line.hpp"

namespace rlc::tline {

/// Chain-parameter matrix [[A, B], [C, D]]: V1 = A V2 + B I2, I1 = C V2 + D I2.
struct Abcd {
  std::complex<double> a{1.0, 0.0};
  std::complex<double> b{0.0, 0.0};
  std::complex<double> c{0.0, 0.0};
  std::complex<double> d{1.0, 0.0};

  /// Cascade: this stage followed by `next` (matrix product this * next).
  Abcd cascade(const Abcd& next) const;

  /// Identity two-port.
  static Abcd identity() { return {}; }

  /// Series impedance Z: [[1, Z], [0, 1]].
  static Abcd series_impedance(std::complex<double> z);

  /// Shunt admittance Y: [[1, 0], [Y, 1]].
  static Abcd shunt_admittance(std::complex<double> y);

  /// Uniform RLC line of length h at complex frequency s:
  /// [[cosh(theta h), Z0 sinh(theta h)], [sinh(theta h)/Z0, cosh(theta h)]].
  static Abcd rlc_line(const LineParams& line, double h, std::complex<double> s);

  /// Voltage transfer V2/V1 into a load admittance Y_load:
  /// H = 1 / (A + B * Y_load) after the load has been absorbed, i.e. for the
  /// full cascade including the load shunt, H = 1 / A.
  std::complex<double> voltage_transfer_open() const { return 1.0 / a; }
};

}  // namespace rlc::tline
