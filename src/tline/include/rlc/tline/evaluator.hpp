#pragma once

/// \file evaluator.hpp
/// TransferEvaluator: a per-(line, h, DriverLoad) evaluator of the exact
/// Eq. (1) transfer function tuned for the inverse-Laplace hot path.
///
/// Against calling exact_transfer_dc_safe() in a loop it
///   * hoists every s-independent invariant of the denominator at
///     construction (driver/load products, c*h, l*h, r*h),
///   * computes cosh(theta h) and sinh(theta h)/(theta h) from a SINGLE
///     complex exponential instead of separate cosh + sinh calls,
///   * memoizes H(s) by exact argument, so repeated probes at the same
///     contour nodes (window re-anchoring, multi-threshold queries, the
///     legacy bisection fallback) pay the transcendental cost once.
///
/// Results are identical to exact_transfer_dc_safe to roundoff; the test
/// suite pins the agreement.  NOT thread-safe: the memo table is mutated on
/// every query — give each thread its own evaluator (they are cheap).

#include <complex>
#include <cstddef>
#include <functional>
#include <unordered_map>
#include <utility>

#include "rlc/tline/line.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::tline {

class TransferEvaluator {
 public:
  /// Validates the line (LineParams::validate) and hoists the invariants.
  TransferEvaluator(const LineParams& line, double h, const DriverLoad& dl);

  /// Flushes this evaluator's cache tallies into the global metrics
  /// registry ("tline.transfer.evals" / "tline.transfer.cache_hits") —
  /// batching at destruction keeps the per-query path untouched.
  ~TransferEvaluator();

  /// Exact H(s), dc-safe form, memoized.
  std::complex<double> transfer(std::complex<double> s) const;

  /// Step-input transform H(s)/s (the function the Talbot inverters see).
  std::complex<double> step(std::complex<double> s) const {
    return transfer(s) / s;
  }

  /// Lightweight step-transform adapter: a two-word trivially-copyable
  /// functor that binds to rlc::FunctionRef without any heap allocation or
  /// virtual dispatch (unlike std::function, whose type-erased copy used to
  /// sit on the inverter hot path).  References *this — must not outlive
  /// the evaluator.
  struct StepFn {
    const TransferEvaluator* ev;
    std::complex<double> operator()(std::complex<double> s) const {
      return ev->step(s);
    }
  };

  /// Adapter for the laplace inverters' per-point signature.
  StepFn step_ref() const noexcept { return StepFn{this}; }

  /// Owning std::function adapter, kept for callers that need to store the
  /// callable beyond the evaluator expression.  Prefer step_ref() on hot
  /// paths — this one allocates.
  std::function<std::complex<double>(std::complex<double>)> step_fn() const {
    return [this](std::complex<double> s) { return step(s); };
  }

  /// Fresh (non-memoized) transfer computations performed so far.
  std::size_t evaluations() const noexcept { return evaluations_; }
  /// Queries answered from the memo table.
  std::size_t cache_hits() const noexcept { return cache_hits_; }

 private:
  struct KeyHash {
    std::size_t operator()(
        const std::pair<double, double>& k) const noexcept;
  };

  std::complex<double> compute(std::complex<double> s) const;

  // Hoisted invariants of the dc-safe denominator.
  double rs_cp_cl_ = 0.0;   ///< Rs (Cp + Cl)
  double rs_ch_ = 0.0;      ///< Rs c h
  double cl_ = 0.0;         ///< Cl
  double rs_cp_cl2_ = 0.0;  ///< Rs Cp Cl
  double ch_ = 0.0;         ///< c h
  double lh_ = 0.0;         ///< l h
  double rh_ = 0.0;         ///< r h

  mutable std::unordered_map<std::pair<double, double>, std::complex<double>,
                             KeyHash>
      memo_;
  mutable std::size_t evaluations_ = 0;
  mutable std::size_t cache_hits_ = 0;
};

}  // namespace rlc::tline
