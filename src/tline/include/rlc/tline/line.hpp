#pragma once

/// \file line.hpp
/// Per-unit-length parameters of a uniform lossy RLC transmission line and
/// the derived secondary parameters Z0(s) (characteristic impedance) and
/// theta(s) (propagation constant), as used in Eq. (1) of the paper.

#include <cmath>
#include <complex>
#include <stdexcept>

namespace rlc::tline {

/// Per-unit-length line parameters, SI units.
struct LineParams {
  double r = 0.0;  ///< series resistance [Ohm/m]
  double l = 0.0;  ///< series inductance [H/m]
  double c = 0.0;  ///< shunt capacitance [F/m]

  /// Characteristic impedance Z0(s) = sqrt((r + s*l) / (s*c)).
  std::complex<double> z0(std::complex<double> s) const {
    return std::sqrt((r + s * l) / (s * c));
  }

  /// Propagation constant theta(s) = sqrt((r + s*l) * s * c) [1/m].
  std::complex<double> theta(std::complex<double> s) const {
    return std::sqrt((r + s * l) * s * c);
  }

  /// Lossless characteristic impedance sqrt(l/c) — the large-inductance
  /// asymptote the optimal driver impedance matches (Section 3.1).
  double z0_lossless() const {
    if (l <= 0.0 || c <= 0.0) {
      throw std::domain_error("z0_lossless requires l > 0 and c > 0");
    }
    return std::sqrt(l / c);
  }

  /// Time of flight per unit length sqrt(l*c) [s/m] (lossless limit).
  double time_of_flight() const { return std::sqrt(l * c); }

  /// Validate physical ranges (r, c > 0; l >= 0).  Throws std::domain_error.
  void validate() const {
    if (!(r > 0.0) || !(c > 0.0) || !(l >= 0.0)) {
      throw std::domain_error("LineParams: require r > 0, c > 0, l >= 0");
    }
  }
};

}  // namespace rlc::tline
