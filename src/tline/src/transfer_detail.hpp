#pragma once

/// \file transfer_detail.hpp
/// Shared kernels of the Eq. (1) transfer-function implementations:
/// the series-guarded sinh(x)/x and the singularity-free denominator
/// assembly used by exact_transfer_dc_safe, exact_transfer_skin and the
/// TransferEvaluator.  Internal to rlc_tline.

#include <cmath>
#include <complex>

#include "rlc/tline/transfer.hpp"

namespace rlc::tline::detail {

using cplx = std::complex<double>;

/// Series-guard threshold on |theta h|: below this the cosh/sinhc pair is
/// evaluated by its Taylor series instead of exp (analytic at 0, avoids
/// 0/0).  The batch kernel tests |(theta h)^2| instead (it carries theta^2
/// in SoA form), so it compares against the SQUARE of this constant — both
/// spellings live here so the scalar and SIMD guards cannot drift.
inline constexpr double kSeriesGuardThreshold = 1e-4;
inline constexpr double kSeriesGuardThresholdSq =
    kSeriesGuardThreshold * kSeriesGuardThreshold;

/// sinh(x)/x with a series fallback near zero (analytic at x = 0).
inline cplx sinhc(cplx x) {
  if (std::abs(x) < kSeriesGuardThreshold) {
    const cplx x2 = x * x;
    return 1.0 + x2 / 6.0 + x2 * x2 / 120.0;
  }
  return std::sinh(x) / x;
}

/// cosh(x) and sinh(x)/x from a SINGLE complex exponential: e = exp(x),
/// cosh = (e + 1/e)/2, sinh = (e - 1/e)/2, with the same series guard for
/// sinhc near zero.  One exp instead of cosh + sinh halves the dominant
/// transcendental cost of a transfer evaluation.
inline void cosh_sinhc(cplx x, cplx& ch, cplx& shc) {
  if (std::abs(x) < kSeriesGuardThreshold) {
    const cplx x2 = x * x;
    ch = 1.0 + x2 / 2.0 + x2 * x2 / 24.0;
    shc = 1.0 + x2 / 6.0 + x2 * x2 / 120.0;
    return;
  }
  const cplx e = std::exp(x);
  const cplx einv = 1.0 / e;
  ch = 0.5 * (e + einv);
  shc = 0.5 * (e - einv) / x;
}

/// Denominator of Eq. (1) in the singularity-free form, given the series
/// impedance per length zser = r + s l (or its skin-corrected variant), the
/// shunt admittance per length ypar = s c, and precomputed cosh(theta h)
/// and sinhc(theta h).  H(s) = 1 / denominator.
inline cplx dc_safe_denominator(const DriverLoad& dl, cplx s, cplx zser,
                                cplx ypar, double h, cplx ch, cplx shc) {
  return (1.0 + s * dl.rs_eff * (dl.cp_eff + dl.cl_eff)) * ch +
         dl.rs_eff * ypar * h * shc +
         (s * dl.cl_eff + s * s * dl.rs_eff * dl.cp_eff * dl.cl_eff) * zser *
             h * shc;
}

}  // namespace rlc::tline::detail
