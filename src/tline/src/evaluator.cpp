#include "rlc/tline/evaluator.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "rlc/obs/metrics.hpp"
#include "transfer_detail.hpp"

namespace rlc::tline {

namespace {

using cplx = std::complex<double>;

}  // namespace

std::size_t TransferEvaluator::KeyHash::operator()(
    const std::pair<double, double>& k) const noexcept {
  // Bit-pattern hash; equality stays the exact double comparison, so
  // distinct s never alias.  +0.0 canonicalizes the signed zeros: -0.0 and
  // +0.0 compare equal, so they MUST hash equal or the same key lands in
  // two buckets and the table invariant breaks.
  const auto a = std::bit_cast<std::uint64_t>(k.first + 0.0);
  const auto b = std::bit_cast<std::uint64_t>(k.second + 0.0);
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x);
}

TransferEvaluator::TransferEvaluator(const LineParams& line, double h,
                                     const DriverLoad& dl) {
  line.validate();
  rs_cp_cl_ = dl.rs_eff * (dl.cp_eff + dl.cl_eff);
  rs_ch_ = dl.rs_eff * line.c * h;
  cl_ = dl.cl_eff;
  rs_cp_cl2_ = dl.rs_eff * dl.cp_eff * dl.cl_eff;
  ch_ = line.c * h;
  lh_ = line.l * h;
  rh_ = line.r * h;
}

TransferEvaluator::~TransferEvaluator() {
  auto& reg = obs::Registry::global();
  static const int kEvals = reg.counter("tline.transfer.evals");
  static const int kHits = reg.counter("tline.transfer.cache_hits");
  if (evaluations_ > 0) {
    reg.add(kEvals, static_cast<std::int64_t>(evaluations_));
  }
  if (cache_hits_ > 0) {
    reg.add(kHits, static_cast<std::int64_t>(cache_hits_));
  }
}

cplx TransferEvaluator::compute(cplx s) const {
  // Same dc-safe form as exact_transfer_dc_safe, with the invariants hoisted
  // and cosh/sinhc obtained from one complex exp.
  const cplx zser_h = rh_ + s * lh_;  // (r + s l) h
  const cplx ypar_h = s * ch_;        // s c h
  const cplx th = std::sqrt(zser_h * ypar_h);
  cplx ch, shc;
  detail::cosh_sinhc(th, ch, shc);
  const cplx denom = (1.0 + s * rs_cp_cl_) * ch + s * rs_ch_ * shc +
                     (s * cl_ + s * s * rs_cp_cl2_) * zser_h * shc;
  return 1.0 / denom;
}

cplx TransferEvaluator::transfer(cplx s) const {
  const std::pair<double, double> key{s.real(), s.imag()};
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++cache_hits_;
    return it->second;
  }
  const cplx v = compute(s);
  ++evaluations_;
  memo_.emplace(key, v);
  return v;
}

}  // namespace rlc::tline
