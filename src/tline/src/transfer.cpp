#include "rlc/tline/transfer.hpp"

#include <algorithm>
#include <stdexcept>

#include "rlc/math/constants.hpp"
#include "transfer_detail.hpp"

namespace rlc::tline {

namespace {

using cplx = std::complex<double>;
using detail::dc_safe_denominator;
using detail::sinhc;

}  // namespace

cplx exact_transfer(const LineParams& line, double h, const DriverLoad& dl,
                    cplx s) {
  const cplx th = line.theta(s) * h;
  const cplx z0 = line.z0(s);
  const cplx ch = std::cosh(th);
  const cplx sh = std::sinh(th);
  const cplx denom =
      (1.0 + s * dl.rs_eff * (dl.cp_eff + dl.cl_eff)) * ch +
      (dl.rs_eff / z0 + s * dl.cl_eff * z0 + s * s * dl.rs_eff * dl.cp_eff * dl.cl_eff * z0) *
          sh;
  return 1.0 / denom;
}

cplx exact_transfer_dc_safe(const LineParams& line, double h,
                            const DriverLoad& dl, cplx s) {
  // theta^2 = (r + s l) s c; use sinh(th)/Z0 = s c h sinhc(th) and
  // Z0 sinh(th) = (r + s l) h sinhc(th), both analytic at s = 0.
  const cplx zser = line.r + s * line.l;        // series impedance per length
  const cplx ypar = s * line.c;                 // shunt admittance per length
  const cplx th = std::sqrt(zser * ypar * h * h);
  const cplx ch = std::cosh(th);
  const cplx shc = sinhc(th);
  return 1.0 / dc_safe_denominator(dl, s, zser, ypar, h, ch, shc);
}

cplx exact_transfer_skin(const LineParams& line, double h,
                         const DriverLoad& dl, double w_skin, cplx s) {
  if (!(w_skin > 0.0)) {
    throw std::domain_error("exact_transfer_skin: w_skin must be > 0");
  }
  // Series impedance with the skin correction; shunt admittance unchanged.
  cplx zr = std::sqrt(1.0 + s / w_skin);
  if (zr.real() < 0.0) zr = -zr;  // passive branch
  const cplx zser = line.r * zr + s * line.l;
  const cplx ypar = s * line.c;
  const cplx th = std::sqrt(zser * ypar) * h;
  const cplx ch = std::cosh(th);
  const cplx shc = sinhc(th);
  return 1.0 / dc_safe_denominator(dl, s, zser, ypar, h, ch, shc);
}

double skin_crossover_angular_frequency(double resistivity, double width,
                                        double thickness) {
  if (!(resistivity > 0.0 && width > 0.0 && thickness > 0.0)) {
    throw std::domain_error(
        "skin_crossover_angular_frequency: inputs must be > 0");
  }
  const double d = std::min(width, thickness);
  return 8.0 * resistivity / (rlc::math::kMu0 * d * d);
}

cplx abcd_transfer(const LineParams& line, double h, const DriverLoad& dl,
                   cplx s) {
  const Abcd chain = Abcd::series_impedance(dl.rs_eff)
                         .cascade(Abcd::shunt_admittance(s * dl.cp_eff))
                         .cascade(Abcd::rlc_line(line, h, s))
                         .cascade(Abcd::shunt_admittance(s * dl.cl_eff));
  return chain.voltage_transfer_open();
}

}  // namespace rlc::tline
