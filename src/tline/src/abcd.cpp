#include "rlc/tline/abcd.hpp"

namespace rlc::tline {

Abcd Abcd::cascade(const Abcd& next) const {
  Abcd out;
  out.a = a * next.a + b * next.c;
  out.b = a * next.b + b * next.d;
  out.c = c * next.a + d * next.c;
  out.d = c * next.b + d * next.d;
  return out;
}

Abcd Abcd::series_impedance(std::complex<double> z) {
  Abcd m;
  m.b = z;
  return m;
}

Abcd Abcd::shunt_admittance(std::complex<double> y) {
  Abcd m;
  m.c = y;
  return m;
}

Abcd Abcd::rlc_line(const LineParams& line, double h, std::complex<double> s) {
  const std::complex<double> th = line.theta(s) * h;
  const std::complex<double> z0 = line.z0(s);
  const std::complex<double> ch = std::cosh(th);
  const std::complex<double> sh = std::sinh(th);
  Abcd m;
  m.a = ch;
  m.b = z0 * sh;
  m.c = sh / z0;
  m.d = ch;
  return m;
}

}  // namespace rlc::tline
