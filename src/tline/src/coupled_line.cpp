#include "rlc/tline/coupled_line.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rlc/linalg/eigen.hpp"

namespace rlc::tline {

void CoupledLine::validate() const {
  if (!(r > 0.0)) throw std::domain_error("CoupledLine: require r > 0");
  const std::size_t n = inductance.rows();
  if (n == 0 || inductance.cols() != n || capacitance.rows() != n ||
      capacitance.cols() != n) {
    throw std::domain_error(
        "CoupledLine: L and C must be square matrices of equal size >= 1");
  }
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      scale = std::max({scale, std::abs(inductance(i, j)),
                        std::abs(capacitance(i, j))});
  for (std::size_t i = 0; i < n; ++i) {
    if (!(capacitance(i, i) > 0.0))
      throw std::domain_error("CoupledLine: require diag(C) > 0");
    if (!(inductance(i, i) >= 0.0))
      throw std::domain_error("CoupledLine: require diag(L) >= 0");
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(inductance(i, j) - inductance(j, i)) > 1e-12 * scale ||
          std::abs(capacitance(i, j) - capacitance(j, i)) > 1e-12 * scale) {
        throw std::domain_error("CoupledLine: L and C must be symmetric");
      }
    }
  }
}

CoupledLine symmetric_bus(const LineParams& base, double cc, double km,
                          std::size_t n) {
  base.validate();
  if (n < 1 || n > 8)
    throw std::domain_error("symmetric_bus: require 1 <= n <= 8");
  if (n > 1 && !(cc >= 0.0))
    throw std::domain_error("symmetric_bus: require cc >= 0");
  if (n > 1 && !(std::abs(km) < 1.0))
    throw std::domain_error("symmetric_bus: require |km| < 1");

  CoupledLine line;
  line.r = base.r;
  line.inductance = linalg::MatrixD(n, n, 0.0);
  line.capacitance = linalg::MatrixD(n, n, 0.0);
  // Path-adjacency couplings; every conductor homogenized to the same total
  // shunt capacitance c + d_max*cc (edge conductors make up the difference
  // with a grounded shield cap).
  const double d_max = (n >= 3) ? 2.0 : (n == 2 ? 1.0 : 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    line.inductance(i, i) = base.l;
    line.capacitance(i, i) = base.c + d_max * cc;
    if (i + 1 < n) {
      line.inductance(i, i + 1) = km * base.l;
      line.inductance(i + 1, i) = km * base.l;
      line.capacitance(i, i + 1) = -cc;
      line.capacitance(i + 1, i) = -cc;
    }
  }
  return line;
}

std::vector<double> ModalDecomposition::modal_weights(
    const std::vector<double>& x) const {
  const std::size_t n = modes.size();
  if (x.size() != n)
    throw std::invalid_argument("ModalDecomposition::modal_weights: size");
  std::vector<double> m(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += vectors(i, j) * x[i];
    m[j] = acc;
  }
  return m;
}

std::vector<double> ModalDecomposition::recompose(
    const std::vector<double>& m) const {
  const std::size_t n = modes.size();
  if (m.size() != n)
    throw std::invalid_argument("ModalDecomposition::recompose: size");
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += vectors(i, j) * m[j];
    x[i] = acc;
  }
  return x;
}

ModalDecomposition modal_decomposition(const CoupledLine& line) {
  line.validate();
  const std::size_t n = line.conductors();

  ModalDecomposition d;
  if (n == 1) {
    // Degenerate single conductor: identity basis, no eigensolve (keeps the
    // scalar path bit-exact).
    d.modes.push_back(
        LineParams{line.r, line.inductance(0, 0), line.capacitance(0, 0)});
    d.vectors = linalg::MatrixD(1, 1, 1.0);
    d.modes[0].validate();
    return d;
  }

  // Shared orthonormal basis: diagonalize C first (its spectrum orders the
  // modes), then L inside degenerate C-clusters.  Throws if [C, L] != 0.
  linalg::SimultaneousDiagResult sd =
      linalg::simultaneous_diagonalize(line.capacitance, line.inductance);
  d.vectors = std::move(sd.vectors);
  d.modes.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    LineParams mode{line.r, sd.b_values[j], sd.a_values[j]};
    // Clamp eigensolver roundoff on an exactly-zero modal inductance.
    if (mode.l < 0.0 && mode.l > -1e-15 * std::abs(line.inductance(0, 0)))
      mode.l = 0.0;
    mode.validate();
    d.modes.push_back(mode);
  }
  return d;
}

}  // namespace rlc::tline
