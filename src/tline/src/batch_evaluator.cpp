#include "rlc/tline/batch_evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "rlc/obs/metrics.hpp"
#include "transfer_detail.hpp"

namespace rlc::tline {

namespace {

// Stage buffers live on the stack; blocks keep them inside L1 while still
// amortizing the vectorized exp over full SIMD sweeps.
constexpr std::size_t kBlock = 128;

/// 1/(a + ib) with the magnitudes pre-scaled so |denominator| anywhere in
/// the normal range neither overflows nor underflows the intermediate
/// squares (the plain conj/|z|^2 form dies near sqrt(DBL_MAX)).
inline void crecip(double a, double b, double& rr, double& ri) {
  const double m = std::max(std::abs(a), std::abs(b));
  const double sc = 1.0 / m;
  if (!std::isfinite(sc) || sc <= 0.0) {
    // m is 0, inf or NaN: no finite reciprocal exists; the naive form
    // propagates the right inf/NaN flavor.
    const double d = a * a + b * b;
    rr = a / d;
    ri = -b / d;
    return;
  }
  const double as = a * sc;
  const double bs = b * sc;
  const double minv = 1.0 / (as * as + bs * bs);  // scaled |z|^2 in [1, 2]
  rr = sc * as * minv;
  ri = -(sc * bs * minv);
}

}  // namespace

BatchTransferEvaluator::BatchTransferEvaluator(const LineParams& line,
                                               double h, const DriverLoad& dl,
                                               simd::Level level)
    : level_(level) {
  line.validate();
  rs_cp_cl_ = dl.rs_eff * (dl.cp_eff + dl.cl_eff);
  rs_ch_ = dl.rs_eff * line.c * h;
  cl_ = dl.cl_eff;
  rs_cp_cl2_ = dl.rs_eff * dl.cp_eff * dl.cl_eff;
  ch_ = line.c * h;
  lh_ = line.l * h;
  rh_ = line.r * h;
}

BatchTransferEvaluator::~BatchTransferEvaluator() {
  auto& reg = obs::Registry::global();
  static const int kEvals = reg.counter("tline.transfer.evals");
  static const int kPasses = reg.counter("tline.transfer.batch_passes");
  if (evaluations_ > 0) {
    reg.add(kEvals, static_cast<std::int64_t>(evaluations_));
  }
  if (passes_ > 0) {
    reg.add(kPasses, static_cast<std::int64_t>(passes_));
  }
}

void BatchTransferEvaluator::eval(const double* s_re, const double* s_im,
                                  double* out_re, double* out_im,
                                  std::size_t n, bool divide_by_s) const {
  double th_re[kBlock], th_im[kBlock];  // theta h = sqrt(zser ypar) h
  double e_re[kBlock], e_im[kBlock];    // exp(theta h)
  double zr[kBlock], zi[kBlock];        // zser h = (r + s l) h
  double wr[kBlock], wi[kBlock];        // (theta h)^2 = zser ypar h^2

  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t m = std::min(kBlock, n - base);
    const double* sr = s_re + base;
    const double* si = s_im + base;

    // Stage 1: per-node impedance products and the principal complex sqrt
    // giving Re(theta h) >= 0, so exp(theta h) never underflows into the
    // 1/e reciprocal.
    for (std::size_t i = 0; i < m; ++i) {
      const double zre = rh_ + sr[i] * lh_;
      const double zim = si[i] * lh_;
      const double yre = sr[i] * ch_;
      const double yim = si[i] * ch_;
      zr[i] = zre;
      zi[i] = zim;
      const double pre = zre * yre - zim * yim;
      const double pim = zre * yim + zim * yre;
      wr[i] = pre;
      wi[i] = pim;
      const double mag = std::sqrt(pre * pre + pim * pim);
      double tre, tim;
      if (pre >= 0.0) {
        tre = std::sqrt(0.5 * (mag + pre));
        tim = tre > 0.0 ? 0.5 * pim / tre : 0.0;
      } else {
        tim = std::copysign(std::sqrt(0.5 * (mag - pre)), pim);
        tre = pim == 0.0 ? 0.0 : 0.5 * pim / tim;
      }
      th_re[i] = tre;
      th_im[i] = tim;
    }

    // Stage 2: the transcendental core — ONE vectorized complex exp sweep.
    simd::cexp_pd(level_, th_re, th_im, e_re, e_im, m);

    // Stage 3: cosh/sinhc from e and 1/e, dc-safe denominator, reciprocal.
    for (std::size_t i = 0; i < m; ++i) {
      // exp(theta h) overflowed: |denominator| grows like |e|, so H (and
      // H/s) is 0 to double precision.  The per-point path reaches the same
      // value through IEEE inf arithmetic (1/inf); division chains on inf
      // operands would hand us NaN instead, so saturate explicitly.
      if (!(std::isfinite(e_re[i]) && std::isfinite(e_im[i]))) {
        out_re[base + i] = 0.0;
        out_im[base + i] = 0.0;
        continue;
      }
      double chr, chi, shr, shi;  // cosh(th), sinh(th)/th
      // Same guard as detail::cosh_sinhc: |th| < t  <=>  |th^2| < t^2.
      if (std::sqrt(wr[i] * wr[i] + wi[i] * wi[i]) <
          detail::kSeriesGuardThresholdSq) {
        // Series in w = th^2, analytic through th = 0.
        const double w2r = wr[i] * wr[i] - wi[i] * wi[i];
        const double w2i = 2.0 * wr[i] * wi[i];
        chr = 1.0 + 0.5 * wr[i] + w2r / 24.0;
        chi = 0.5 * wi[i] + w2i / 24.0;
        shr = 1.0 + wr[i] / 6.0 + w2r / 120.0;
        shi = wi[i] / 6.0 + w2i / 120.0;
      } else {
        double ivr, ivi;  // 1/e
        crecip(e_re[i], e_im[i], ivr, ivi);
        chr = 0.5 * (e_re[i] + ivr);
        chi = 0.5 * (e_im[i] + ivi);
        double tvr, tvi;  // 1/th
        crecip(th_re[i], th_im[i], tvr, tvi);
        const double dr = 0.5 * (e_re[i] - ivr);
        const double di = 0.5 * (e_im[i] - ivi);
        shr = dr * tvr - di * tvi;
        shi = dr * tvi + di * tvr;
      }

      const double a = sr[i];
      const double b = si[i];
      // g1 = 1 + s Rs(Cp+Cl)
      const double g1r = 1.0 + a * rs_cp_cl_;
      const double g1i = b * rs_cp_cl_;
      // g2 = s Rs c h
      const double g2r = a * rs_ch_;
      const double g2i = b * rs_ch_;
      // g3 = (s Cl + s^2 Rs Cp Cl) zser h
      const double s2r = a * a - b * b;
      const double s2i = 2.0 * a * b;
      const double pr = a * cl_ + s2r * rs_cp_cl2_;
      const double pi = b * cl_ + s2i * rs_cp_cl2_;
      const double g3r = pr * zr[i] - pi * zi[i];
      const double g3i = pr * zi[i] + pi * zr[i];
      // denom = g1 ch + (g2 + g3) shc
      const double g23r = g2r + g3r;
      const double g23i = g2i + g3i;
      const double denr = g1r * chr - g1i * chi + g23r * shr - g23i * shi;
      const double deni = g1r * chi + g1i * chr + g23r * shi + g23i * shr;

      // Same saturation for a denominator that overflowed on its own (huge
      // cosh/sinhc times the line coefficients): 1/inf == 0.
      if (!(std::isfinite(denr) && std::isfinite(deni))) {
        out_re[base + i] = 0.0;
        out_im[base + i] = 0.0;
        continue;
      }
      double hr, hi;
      crecip(denr, deni, hr, hi);
      if (divide_by_s) {
        double svr, svi;
        crecip(a, b, svr, svi);
        out_re[base + i] = hr * svr - hi * svi;
        out_im[base + i] = hr * svi + hi * svr;
      } else {
        out_re[base + i] = hr;
        out_im[base + i] = hi;
      }
    }
  }

  evaluations_ += n;
  ++passes_;
}

void BatchTransferEvaluator::transfer(const double* s_re, const double* s_im,
                                      double* h_re, double* h_im,
                                      std::size_t n) const {
  eval(s_re, s_im, h_re, h_im, n, /*divide_by_s=*/false);
}

void BatchTransferEvaluator::step(const double* s_re, const double* s_im,
                                  double* f_re, double* f_im,
                                  std::size_t n) const {
  eval(s_re, s_im, f_re, f_im, n, /*divide_by_s=*/true);
}

std::complex<double> BatchTransferEvaluator::transfer(
    std::complex<double> s) const {
  const double sr = s.real(), si = s.imag();
  double hr, hi;
  eval(&sr, &si, &hr, &hi, 1, /*divide_by_s=*/false);
  return {hr, hi};
}

std::complex<double> BatchTransferEvaluator::step(
    std::complex<double> s) const {
  const double sr = s.real(), si = s.imag();
  double fr, fi;
  eval(&sr, &si, &fr, &fi, 1, /*divide_by_s=*/true);
  return {fr, fi};
}

}  // namespace rlc::tline
