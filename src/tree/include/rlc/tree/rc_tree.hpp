#pragma once

/// \file rc_tree.hpp
/// RC interconnect trees: the branching generalization of the paper's
/// point-to-point line.  Provides the first two impulse-response moments at
/// every node (Elmore delay = m1, computed by the classic two-pass O(n)
/// algorithm) and per-sink two-pole reductions compatible with
/// rlc::core::TwoPole, so the same Eq. (3) threshold-delay machinery applies
/// to tree sinks.
///
/// Moment conventions: H_i(s) = 1 - m1_i s + m2_i s^2 - ... so that
/// b1 = m1 and b2 = m1^2 - m2 reduce each sink to the paper's two-pole form.

#include <vector>

#include "rlc/core/pade.hpp"

namespace rlc::tree {

using NodeId = int;

/// A rooted RC tree.  Node 0 is the root, driven from an ideal source
/// through the driver resistance given at construction.  Each further node
/// hangs off its parent through an edge resistance and carries a lumped
/// capacitance to ground.
class RcTree {
 public:
  /// `driver_resistance` > 0: the source/driver output resistance feeding
  /// the root; `root_cap` >= 0: lumped capacitance at the root node.
  explicit RcTree(double driver_resistance, double root_cap = 0.0);

  /// Add a node with capacitance `cap` connected to `parent` through
  /// resistance `r_edge` (> 0).  Returns the new node id.
  NodeId add_node(NodeId parent, double r_edge, double cap);

  /// Convenience: add a uniform wire of total resistance r_total and total
  /// capacitance c_total from `from`, as `nseg` pi-segments.  Returns the
  /// far-end node.
  NodeId add_wire(NodeId from, double r_total, double c_total, int nseg);

  /// Add extra lumped capacitance at an existing node (e.g. a sink load).
  void add_cap(NodeId node, double cap);

  int size() const { return static_cast<int>(parent_.size()); }
  NodeId parent(NodeId n) const { return parent_[n]; }
  double edge_resistance(NodeId n) const { return r_edge_[n]; }
  double node_cap(NodeId n) const { return cap_[n]; }
  double driver_resistance() const { return rs_; }
  const std::vector<NodeId>& children(NodeId n) const { return children_[n]; }
  /// Nodes with no children.
  std::vector<NodeId> leaves() const;
  /// Total capacitance of the tree.
  double total_cap() const;

  /// First moment (Elmore delay) at every node [s].
  std::vector<double> elmore_delays() const;

  /// First and second impulse-response moments at every node.
  struct Moments {
    double m1 = 0.0;
    double m2 = 0.0;
  };
  std::vector<Moments> moments() const;

  /// Two-pole (Pade) reduction at one node: b1 = m1, b2 = m1^2 - m2.
  /// Throws std::runtime_error when the moments are not reducible
  /// (b2 <= 0): a single lumped RC is a true one-pole system, and nodes
  /// near the root of a deep tree can have m2 > m1^2 (fast local rise with
  /// a long far-capacitance tail).  Sinks of interest are reducible in
  /// practice; callers must handle the refusal.
  rlc::core::PadeCoeffs two_pole_at(NodeId node) const;

 private:
  double rs_;
  std::vector<NodeId> parent_;
  std::vector<double> r_edge_;
  std::vector<double> cap_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace rlc::tree
