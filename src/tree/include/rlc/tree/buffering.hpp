#pragma once

/// \file buffering.hpp
/// Van Ginneken-style optimal buffer insertion on RC trees: bottom-up
/// dynamic programming over (load capacitance, worst sink delay) candidates
/// with Pareto pruning — the tree generalization of the paper's uniform-line
/// repeater insertion, using the same repeater abstraction (r_s, c_0, c_p).
/// Delay model: Elmore.

#include <vector>

#include "rlc/core/technology.hpp"
#include "rlc/tree/rc_tree.hpp"

namespace rlc::tree {

/// One buffer cell: output resistance, input capacitance, output parasitic,
/// intrinsic delay.  `from_repeater` builds a cell from the paper's
/// repeater abstraction at size k (intrinsic delay rs/k * (cp + c0) k ~ the
/// self-loaded delay; callers may override).
struct BufferCell {
  double rs = 0.0;         ///< output resistance [Ohm]
  double cin = 0.0;        ///< input capacitance [F]
  double cp = 0.0;         ///< output parasitic capacitance [F]
  double intrinsic = 0.0;  ///< intrinsic delay [s]

  static BufferCell from_repeater(const rlc::core::Repeater& rep, double k);
};

struct BufferLibrary {
  std::vector<BufferCell> cells;

  /// Geometrically sized library from the repeater abstraction:
  /// k = k_min * ratio^i, i = 0..n-1.
  static BufferLibrary geometric(const rlc::core::Repeater& rep, double k_min,
                                 double ratio, int n);
};

/// A chosen insertion: buffer cell index at a tree node.
struct Placement {
  NodeId node = 0;
  int cell = 0;
};

struct BufferingResult {
  double delay = 0.0;  ///< worst root-to-sink Elmore delay after buffering
  std::vector<Placement> placements;
};

struct BufferingOptions {
  /// Nodes where insertion is allowed; empty = every node except the root.
  std::vector<NodeId> legal_nodes;
  /// Keep at most this many Pareto candidates per node (0 = unlimited).
  int max_candidates = 0;
};

/// Minimize the worst root-to-sink Elmore delay by optimally inserting
/// buffers from `lib` at legal nodes of `tree`.  Returns the optimal delay
/// and the placements achieving it.  The unbuffered solution is always a
/// candidate, so the result never exceeds the plain Elmore delay.
BufferingResult van_ginneken(const RcTree& tree, const BufferLibrary& lib,
                             const BufferingOptions& opts = {});

/// Worst sink Elmore delay without any buffering (baseline).
double unbuffered_delay(const RcTree& tree);

}  // namespace rlc::tree
