#include "rlc/tree/rc_tree.hpp"

#include <stdexcept>

namespace rlc::tree {

RcTree::RcTree(double driver_resistance, double root_cap) : rs_(driver_resistance) {
  if (!(driver_resistance > 0.0) || !(root_cap >= 0.0)) {
    throw std::domain_error("RcTree: require rs > 0 and root_cap >= 0");
  }
  parent_.push_back(-1);
  r_edge_.push_back(0.0);
  cap_.push_back(root_cap);
  children_.emplace_back();
}

NodeId RcTree::add_node(NodeId parent, double r_edge, double cap) {
  if (parent < 0 || parent >= size()) {
    throw std::out_of_range("RcTree::add_node: bad parent");
  }
  if (!(r_edge > 0.0) || !(cap >= 0.0)) {
    throw std::domain_error("RcTree::add_node: require r_edge > 0, cap >= 0");
  }
  const NodeId id = size();
  parent_.push_back(parent);
  r_edge_.push_back(r_edge);
  cap_.push_back(cap);
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

NodeId RcTree::add_wire(NodeId from, double r_total, double c_total, int nseg) {
  if (nseg < 1) throw std::domain_error("RcTree::add_wire: nseg must be >= 1");
  if (!(r_total > 0.0) || !(c_total >= 0.0)) {
    throw std::domain_error("RcTree::add_wire: require r > 0, c >= 0");
  }
  const double rseg = r_total / nseg;
  const double cseg = c_total / nseg;
  NodeId cur = from;
  // Pi segments: half capacitance at each segment end; adjacent halves merge.
  add_cap(cur, 0.5 * cseg);
  for (int i = 0; i < nseg; ++i) {
    const double end_cap = (i + 1 < nseg) ? cseg : 0.5 * cseg;
    cur = add_node(cur, rseg, end_cap);
  }
  return cur;
}

void RcTree::add_cap(NodeId node, double cap) {
  if (node < 0 || node >= size()) throw std::out_of_range("RcTree::add_cap: bad node");
  if (!(cap >= 0.0)) throw std::domain_error("RcTree::add_cap: cap must be >= 0");
  cap_[node] += cap;
}

std::vector<NodeId> RcTree::leaves() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < size(); ++n) {
    if (children_[n].empty()) out.push_back(n);
  }
  return out;
}

double RcTree::total_cap() const {
  double acc = 0.0;
  for (double c : cap_) acc += c;
  return acc;
}

std::vector<double> RcTree::elmore_delays() const {
  std::vector<double> m1(size());
  // Downstream capacitance by reverse topological order (children have
  // larger ids than parents by construction).
  std::vector<double> cdown(cap_);
  for (NodeId n = size() - 1; n >= 1; --n) cdown[parent_[n]] += cdown[n];
  // Prefix accumulation: m1(i) = m1(parent) + R_edge(i) * Cdown(i), with the
  // driver resistance common to the whole tree.
  m1[0] = rs_ * cdown[0];
  for (NodeId n = 1; n < size(); ++n) {
    m1[n] = m1[parent_[n]] + r_edge_[n] * cdown[n];
  }
  return m1;
}

std::vector<RcTree::Moments> RcTree::moments() const {
  const std::vector<double> m1 = elmore_delays();
  // Second moment: same recursion with capacitances weighted by m1:
  // m2(i) = sum_k R_ik C_k m1_k.
  std::vector<double> c2(size());
  for (NodeId n = 0; n < size(); ++n) c2[n] = cap_[n] * m1[n];
  for (NodeId n = size() - 1; n >= 1; --n) c2[parent_[n]] += c2[n];
  std::vector<Moments> out(size());
  out[0] = {m1[0], rs_ * c2[0]};
  for (NodeId n = 1; n < size(); ++n) {
    out[n].m1 = m1[n];
    out[n].m2 = out[parent_[n]].m2 + r_edge_[n] * c2[n];
  }
  return out;
}

rlc::core::PadeCoeffs RcTree::two_pole_at(NodeId node) const {
  if (node < 0 || node >= size()) {
    throw std::out_of_range("RcTree::two_pole_at: bad node");
  }
  const auto ms = moments();
  rlc::core::PadeCoeffs pc;
  pc.b1 = ms[node].m1;
  pc.b2 = ms[node].m1 * ms[node].m1 - ms[node].m2;
  if (!(pc.b1 > 0.0) || !(pc.b2 > 0.0)) {
    throw std::runtime_error("RcTree::two_pole_at: moments not reducible");
  }
  return pc;
}

}  // namespace rlc::tree
