#include "rlc/tree/buffering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlc::tree {

BufferCell BufferCell::from_repeater(const rlc::core::Repeater& rep, double k) {
  if (!(k > 0.0)) throw std::domain_error("BufferCell: k must be > 0");
  BufferCell c;
  c.rs = rep.rs / k;
  c.cin = rep.c0 * k;
  c.cp = rep.cp * k;
  // Self-loaded delay of the stage: Rs * Cp (the load term Rs*C_load is
  // added by the DP when the downstream capacitance is known).
  c.intrinsic = c.rs * c.cp;
  return c;
}

BufferLibrary BufferLibrary::geometric(const rlc::core::Repeater& rep,
                                       double k_min, double ratio, int n) {
  if (!(k_min > 0.0) || !(ratio > 1.0) || n < 1) {
    throw std::domain_error("BufferLibrary::geometric: bad parameters");
  }
  BufferLibrary lib;
  double k = k_min;
  for (int i = 0; i < n; ++i) {
    lib.cells.push_back(BufferCell::from_repeater(rep, k));
    k *= ratio;
  }
  return lib;
}

namespace {

/// One DP candidate: downstream load as seen from the current point, the
/// worst delay from here to any downstream sink, and the placements chosen.
struct Candidate {
  double cap = 0.0;
  double delay = 0.0;
  std::vector<Placement> placements;
};

/// Keep the Pareto frontier: sort by cap ascending and drop any candidate
/// whose delay is not strictly better than a cheaper one's.
void prune(std::vector<Candidate>& cands, int max_candidates) {
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.cap != b.cap) return a.cap < b.cap;
    return a.delay < b.delay;
  });
  std::vector<Candidate> keep;
  double best_delay = std::numeric_limits<double>::infinity();
  for (auto& c : cands) {
    if (c.delay < best_delay - 1e-18) {
      best_delay = c.delay;
      keep.push_back(std::move(c));
    }
  }
  if (max_candidates > 0 && static_cast<int>(keep.size()) > max_candidates) {
    // Uniformly subsample, always keeping the extremes.
    std::vector<Candidate> thin;
    const int n = static_cast<int>(keep.size());
    for (int i = 0; i < max_candidates; ++i) {
      thin.push_back(std::move(keep[i * (n - 1) / (max_candidates - 1)]));
    }
    keep = std::move(thin);
  }
  cands = std::move(keep);
}

/// Merge two children candidate lists at a branch point: caps add, delays
/// take the max.  Cross product then prune.
std::vector<Candidate> merge(const std::vector<Candidate>& a,
                             const std::vector<Candidate>& b,
                             int max_candidates) {
  std::vector<Candidate> out;
  out.reserve(a.size() * b.size());
  for (const auto& x : a) {
    for (const auto& y : b) {
      Candidate c;
      c.cap = x.cap + y.cap;
      c.delay = std::max(x.delay, y.delay);
      c.placements = x.placements;
      c.placements.insert(c.placements.end(), y.placements.begin(),
                          y.placements.end());
      out.push_back(std::move(c));
    }
  }
  prune(out, max_candidates);
  return out;
}

}  // namespace

double unbuffered_delay(const RcTree& tree) {
  const auto m1 = tree.elmore_delays();
  double worst = 0.0;
  for (const NodeId leaf : tree.leaves()) worst = std::max(worst, m1[leaf]);
  return worst;
}

BufferingResult van_ginneken(const RcTree& tree, const BufferLibrary& lib,
                             const BufferingOptions& opts) {
  if (lib.cells.empty()) {
    throw std::invalid_argument("van_ginneken: empty buffer library");
  }
  std::vector<char> legal(tree.size(), opts.legal_nodes.empty() ? 1 : 0);
  legal[0] = 0;  // never at the root (the driver is already there)
  for (const NodeId n : opts.legal_nodes) {
    if (n <= 0 || n >= tree.size()) {
      throw std::out_of_range("van_ginneken: bad legal node");
    }
    legal[n] = 1;
  }

  // Bottom-up over nodes (children always have larger ids).
  std::vector<std::vector<Candidate>> cands(tree.size());
  for (NodeId n = tree.size() - 1; n >= 0; --n) {
    std::vector<Candidate> cur;
    if (tree.children(n).empty()) {
      cur.push_back({tree.node_cap(n), 0.0, {}});
    } else {
      // Children lists have already been propagated through their edges.
      cur = cands[tree.children(n).front()];
      for (std::size_t i = 1; i < tree.children(n).size(); ++i) {
        cur = merge(cur, cands[tree.children(n)[i]], opts.max_candidates);
      }
      for (auto& c : cur) c.cap += tree.node_cap(n);
    }
    // Optional buffer at this node: the buffer drives everything downstream.
    if (legal[n]) {
      std::vector<Candidate> with_buf;
      for (int ci = 0; ci < static_cast<int>(lib.cells.size()); ++ci) {
        const BufferCell& cell = lib.cells[ci];
        // Best downstream option behind this buffer.
        const Candidate* best = nullptr;
        double best_delay = std::numeric_limits<double>::infinity();
        for (const auto& c : cur) {
          const double d = c.delay + cell.intrinsic + cell.rs * (c.cap + cell.cp);
          if (d < best_delay) {
            best_delay = d;
            best = &c;
          }
        }
        if (best == nullptr) continue;
        Candidate nc;
        nc.cap = cell.cin;
        nc.delay = best_delay;
        nc.placements = best->placements;
        nc.placements.push_back({n, ci});
        with_buf.push_back(std::move(nc));
      }
      cur.insert(cur.end(), std::make_move_iterator(with_buf.begin()),
                 std::make_move_iterator(with_buf.end()));
      prune(cur, opts.max_candidates);
    }
    // Propagate through the edge to the parent (root has no edge).
    if (n > 0) {
      const double r = tree.edge_resistance(n);
      for (auto& c : cur) c.delay += r * c.cap;
    }
    cands[n] = std::move(cur);
  }

  // Driver at the root.
  BufferingResult res;
  res.delay = std::numeric_limits<double>::infinity();
  for (const auto& c : cands[0]) {
    const double d = c.delay + tree.driver_resistance() * c.cap;
    if (d < res.delay) {
      res.delay = d;
      res.placements = c.placements;
    }
  }
  return res;
}

}  // namespace rlc::tree
