#include "rlc/io/json.hpp"

#include <cmath>
#include <cstdio>

namespace rlc::io {

std::string json_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b";  break;
      case '\f': out += "\\f";  break;
      case '\n': out += "\\n";  break;
      case '\r': out += "\\r";  break;
      case '\t': out += "\\t";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

Json& Json::set(const std::string& key, double v) {
  return raw(key, render_number(v));
}
Json& Json::set(const std::string& key, long long v) {
  return raw(key, std::to_string(v));
}
Json& Json::set(const std::string& key, int v) {
  return raw(key, std::to_string(v));
}
Json& Json::set(const std::string& key, bool v) {
  return raw(key, v ? "true" : "false");
}
Json& Json::set(const std::string& key, const std::string& v) {
  std::string s = "\"";
  s += json_escape(v);
  s += '"';
  return raw(key, std::move(s));
}
Json& Json::set(const std::string& key, const char* v) {
  return set(key, std::string(v));
}
Json& Json::set(const std::string& key, const Json& nested) {
  return raw(key, nested.str());
}
Json& Json::set(const std::string& key, const JsonArray& arr) {
  return raw(key, arr.str());
}
Json& Json::set(const std::string& key, const std::vector<Json>& arr) {
  std::string s = "[";
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (i) s += ", ";
    s += arr[i].str();
  }
  return raw(key, s + "]");
}

std::string Json::str() const {
  std::string s = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) s += ", ";
    s += '"';
    s += json_escape(fields_[i].first);
    s += "\": ";
    s += fields_[i].second;
  }
  s += '}';
  return s;
}

Json& Json::raw(const std::string& key, std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonArray& JsonArray::push(double v) { return raw(render_number(v)); }
JsonArray& JsonArray::push(long long v) { return raw(std::to_string(v)); }
JsonArray& JsonArray::push(int v) { return raw(std::to_string(v)); }
JsonArray& JsonArray::push(bool v) { return raw(v ? "true" : "false"); }
JsonArray& JsonArray::push(const std::string& v) {
  std::string s = "\"";
  s += json_escape(v);
  s += '"';
  return raw(std::move(s));
}
JsonArray& JsonArray::push(const char* v) { return push(std::string(v)); }
JsonArray& JsonArray::push(const Json& obj) { return raw(obj.str()); }
JsonArray& JsonArray::push(const JsonArray& arr) { return raw(arr.str()); }

std::string JsonArray::str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i) s += ", ";
    s += items_[i];
  }
  return s + "]";
}

JsonArray& JsonArray::raw(std::string rendered) {
  items_.push_back(std::move(rendered));
  return *this;
}

bool write_json_file(const std::string& path, const Json& j) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) {
    std::fprintf(stderr, "rlc::io: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string s = j.str();
  const bool ok = std::fwrite(s.data(), 1, s.size(), fp) == s.size() &&
                  std::fputc('\n', fp) != EOF;
  std::fclose(fp);
  return ok;
}

}  // namespace rlc::io
