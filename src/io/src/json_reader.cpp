#include "rlc/io/json_reader.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rlc::io {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json parse error at byte " + std::to_string(pos) +
                           ": " + what);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}
double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}
const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return string_;
}
const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return items_;
}
const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v && v->kind_ == Kind::kNumber ? v->number_ : fallback;
}
long long JsonValue::int_or(const std::string& key, long long fallback) const {
  const JsonValue* v = find(key);
  return v && v->kind_ == Kind::kNumber ? static_cast<long long>(v->number_)
                                        : fallback;
}
bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v && v->kind_ == Kind::kBool ? v->bool_ : fallback;
}
std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v && v->kind_ == Kind::kString ? v->string_ : std::move(fallback);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kNull;
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_ - 1, "bad hex digit in \\u escape");
    }
    return cp;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':  out += '"';  break;
        case '\\': out += '\\'; break;
        case '/':  out += '/';  break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a following \uDC00-\uDFFF low half.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail(pos_, "lone high surrogate");
            }
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_, "bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_, "lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(start, "expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail(start, "malformed number");
    JsonValue out;
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = v;
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) throw std::runtime_error("json: cannot read " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0) text.append(buf, n);
  std::fclose(fp);
  return parse_json(text);
}

}  // namespace rlc::io
