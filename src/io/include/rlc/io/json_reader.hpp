#pragma once

/// \file json_reader.hpp
/// Minimal recursive-descent JSON reader: enough to round-trip everything
/// the `rlc::io::Json` writer emits (objects with ordered keys, arrays,
/// numbers, strings with full RFC 8259 escapes incl. \uXXXX surrogate
/// pairs, booleans, null).  Used by the ScenarioSpec JSON round-trip, the
/// rlc_run `--spec` path, and the artifact round-trip tests.
///
/// Not a general-purpose parser: documents are expected to fit in memory
/// and parse errors throw std::runtime_error with a byte offset.

#include <string>
#include <utility>
#include <vector>

namespace rlc::io {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object lookup (first match); nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Lookup with defaults, for tolerant spec parsing.
  double number_or(const std::string& key, double fallback) const;
  long long int_or(const std::string& key, long long fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
JsonValue parse_json(const std::string& text);

/// Parse a JSON file; throws std::runtime_error if unreadable.
JsonValue parse_json_file(const std::string& path);

}  // namespace rlc::io
