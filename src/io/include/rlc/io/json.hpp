#pragma once

/// \file json.hpp
/// Minimal ordered JSON writer for the machine-readable experiment
/// artifacts (BENCH_*.json) and the ScenarioSpec round-trip.  Promoted out
/// of bench/bench_util.hpp so the scenario layer, the rlc_run driver, and
/// the examples share one implementation.
///
/// `Json` builds an object whose keys keep insertion order; values are
/// rendered on insertion, so nesting is by composing builders.  `JsonArray`
/// is the matching ordered array builder (rows of mixed numbers/strings).
/// Strings are escaped per RFC 8259: quote, backslash, and every control
/// character below 0x20 (the named escapes \b \f \n \r \t, \u00XX for the
/// rest).  Non-finite numbers render as `null` — JSON has no inf/nan.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rlc::io {

/// Escape a string body per RFC 8259 (no surrounding quotes).
std::string json_escape(const std::string& v);

/// Render a double as a JSON number round-trippable to the same bits
/// (%.17g), or `null` when non-finite.
std::string render_number(double v);

class JsonArray;

class Json {
 public:
  Json& set(const std::string& key, double v);
  Json& set(const std::string& key, long long v);
  Json& set(const std::string& key, int v);
  Json& set(const std::string& key, bool v);
  Json& set(const std::string& key, const std::string& v);
  Json& set(const std::string& key, const char* v);
  Json& set(const std::string& key, const Json& nested);
  Json& set(const std::string& key, const JsonArray& arr);
  Json& set(const std::string& key, const std::vector<Json>& arr);

  std::string str() const;

 private:
  Json& raw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

class JsonArray {
 public:
  JsonArray& push(double v);
  JsonArray& push(long long v);
  JsonArray& push(int v);
  JsonArray& push(bool v);
  JsonArray& push(const std::string& v);
  JsonArray& push(const char* v);
  JsonArray& push(const Json& obj);
  JsonArray& push(const JsonArray& arr);

  std::size_t size() const { return items_.size(); }
  std::string str() const;

 private:
  JsonArray& raw(std::string rendered);
  std::vector<std::string> items_;
};

/// Write a JSON document (plus trailing newline) to `path`; returns false
/// (with a note on stderr) on I/O failure so callers can keep rendering
/// their human-readable output regardless.
bool write_json_file(const std::string& path, const Json& j);

}  // namespace rlc::io
