#include "rlc/exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "rlc/base/cancel.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"

namespace rlc::exec {

namespace {

/// Pool instrumentation ids, interned once.  queue_depth is a level gauge
/// (pending parallel loops right now); busy_ns accumulates worker+caller
/// time spent inside run_chunks, i.e. actual chunk execution.
struct PoolMetrics {
  int queue_depth;
  int queue_depth_max;
  int loops;
  int busy_ns;
  static const PoolMetrics& get() {
    static const PoolMetrics m{
        obs::Registry::global().gauge("exec.pool.queue_depth"),
        obs::Registry::global().gauge("exec.pool.queue_depth_max"),
        obs::Registry::global().counter("exec.pool.loops"),
        obs::Registry::global().counter("exec.pool.busy_ns")};
    return m;
  }
};

}  // namespace

std::size_t parse_thread_count(const char* text, std::string* warning) {
  const auto reject = [&](const std::string& why) -> std::size_t {
    if (warning) {
      *warning = "rlc::exec: RLC_NUM_THREADS=\"" +
                 std::string(text ? text : "") + "\" " + why +
                 "; using hardware concurrency";
    }
    return 0;
  };
  if (!text) return 0;  // unset: hardware count, no warning
  if (*text == '\0') return reject("is empty");
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return reject("is not an integer");
  if (errno == ERANGE) return reject("overflows");
  if (v <= 0) return reject("is not positive");
  if (static_cast<unsigned long>(v) > kMaxThreadCount) {
    return reject("exceeds the " + std::to_string(kMaxThreadCount) +
                  "-thread limit");
  }
  return static_cast<std::size_t>(v);
}

rlc::StatusOr<std::size_t> parse_thread_count_strict(const char* text) {
  if (!text) return std::size_t{0};  // unset: hardware count
  const auto reject = [&](const std::string& why) {
    return rlc::Status::invalid_argument("thread count \"" +
                                         std::string(text) + "\" " + why);
  };
  if (*text == '\0') return reject("is empty");
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return reject("is not an integer");
  if (errno == ERANGE) return reject("overflows");
  if (v <= 0) return reject("must be >= 1");
  if (static_cast<unsigned long>(v) > kMaxThreadCount) {
    return reject("exceeds the " + std::to_string(kMaxThreadCount) +
                  "-thread limit");
  }
  return static_cast<std::size_t>(v);
}

std::size_t default_thread_count() {
  std::string warning;
  const std::size_t parsed =
      parse_thread_count(std::getenv("RLC_NUM_THREADS"), &warning);
  if (parsed > 0) return parsed;
  if (!warning.empty()) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) std::fprintf(stderr, "%s\n", warning.c_str());
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

/// One parallel_for invocation.  Chunks are claimed by atomic increment of
/// `next`; completion is accounted in `remaining` under `done_mutex` so the
/// caller can sleep on `done_cv`.  Held by shared_ptr from both the caller
/// and the pool's pending list, so a worker that observes the loop after the
/// caller returned only sees an exhausted index range, never freed memory.
struct ThreadPool::Loop {
  std::size_t n = 0;
  std::size_t grain = 1;
  rlc::ExecState scope{};  ///< submitter's cancel/deadline scope (see below)
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = 0;  // guarded by done_mutex
  std::exception_ptr error;   // guarded by done_mutex
};

ThreadPool::ThreadPool(std::size_t n_threads) {
  size_ = n_threads > 0 ? n_threads : default_thread_count();
  workers_.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main() {
  for (;;) {
    std::shared_ptr<Loop> loop;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      wake_.wait(lk, [&] { return shutdown_ || !pending_.empty(); });
      if (pending_.empty()) return;  // shutdown with nothing left to help
      loop = pending_.front();
      if (loop->next.load(std::memory_order_relaxed) >= loop->n) {
        // Exhausted loop the caller has not reaped yet; drop it and retry.
        pending_.erase(pending_.begin());
        obs::Registry::global().gauge_add(PoolMetrics::get().queue_depth, -1);
        continue;
      }
    }
    run_chunks(*loop);
  }
}

void ThreadPool::run_chunks(Loop& loop) {
  RLC_TRACE_SPAN("pool_run_chunks");
  const std::int64_t t0 = obs::Tracer::now_ns();
  struct BusyScope {
    std::int64_t t0;
    ~BusyScope() {
      obs::Registry::global().add(PoolMetrics::get().busy_ns,
                                  obs::Tracer::now_ns() - t0);
    }
  } busy{t0};
  // Inherit the submitting thread's cancellation/deadline scope so a solve
  // fanned over the pool stays cancellable: rlc::checkpoint() inside fn sees
  // the same {token, deadline} a serial run would.  Unarmed (the common,
  // non-serving case) this installs nothing and costs nothing.
  std::optional<rlc::ExecScope> scope;
  if (loop.scope.armed()) scope.emplace(loop.scope);
  const std::size_t n = loop.n;
  const std::size_t grain = loop.grain;
  for (;;) {
    const std::size_t begin = loop.next.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) return;
    const std::size_t end = std::min(begin + grain, n);
    if (!loop.stop.load(std::memory_order_acquire)) {
      try {
        for (std::size_t i = begin;
             i < end && !loop.stop.load(std::memory_order_relaxed); ++i) {
          (*loop.fn)(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(loop.done_mutex);
        if (!loop.error) loop.error = std::current_exception();
        loop.stop.store(true, std::memory_order_release);
      }
    }
    std::lock_guard<std::mutex> lk(loop.done_mutex);
    loop.remaining -= end - begin;
    if (loop.remaining == 0) loop.done_cv.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  RLC_TRACE_SPAN("parallel_for");
  if (size_ == 1 || n == 1) {
    // Exactly the serial loop: same order, same exception behaviour.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto& reg = obs::Registry::global();
  const PoolMetrics& pm = PoolMetrics::get();
  reg.add(pm.loops);
  if (grain == 0) grain = std::max<std::size_t>(1, n / (4 * size_));
  auto loop = std::make_shared<Loop>();
  loop->n = n;
  loop->grain = grain;
  loop->scope = rlc::current_exec_state();
  loop->fn = &fn;
  loop->remaining = n;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    pending_.push_back(loop);
    reg.gauge_add(pm.queue_depth, 1);
    reg.gauge_max(pm.queue_depth_max,
                  static_cast<std::int64_t>(pending_.size()));
  }
  wake_.notify_all();
  run_chunks(*loop);
  {
    std::unique_lock<std::mutex> lk(loop->done_mutex);
    loop->done_cv.wait(lk, [&] { return loop->remaining == 0; });
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto new_end =
        std::remove(pending_.begin(), pending_.end(), loop);
    // A worker may have already dropped the exhausted loop (and adjusted
    // the gauge); only account for entries removed here.
    reg.gauge_add(pm.queue_depth,
                  -static_cast<std::int64_t>(
                      std::distance(new_end, pending_.end())));
    pending_.erase(new_end, pending_.end());
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rlc::exec
