#include "rlc/exec/counters.hpp"

#include <cmath>
#include <cstdio>

#include "rlc/obs/metrics.hpp"

namespace rlc::exec {

namespace {

std::int64_t to_ns(double seconds) {
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::int64_t>(seconds * 1e9);
}

void atomic_min(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while ((cur < 0 || v < cur) &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Format seconds with an auto-selected unit (s / ms / us).
std::string fmt_time(double s) {
  char buf[48];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  }
  return buf;
}

}  // namespace

void Counters::record_solve(std::int64_t newton_iterations, bool used_fallback,
                            bool failed, double wall_seconds) noexcept {
  tasks_.fetch_add(1, std::memory_order_relaxed);
  newton_iterations_.fetch_add(newton_iterations, std::memory_order_relaxed);
  if (used_fallback) fallbacks_.fetch_add(1, std::memory_order_relaxed);
  if (failed) failures_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t ns = to_ns(wall_seconds);
  wall_total_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(wall_min_ns_, ns);
  atomic_max(wall_max_ns_, ns);

  // Counters is now a thin façade over rlc::obs: the per-instance atomics
  // above keep the historical per-sweep envelope semantics, and the same
  // record is forwarded to the process-wide registry so sweep activity
  // shows up in --metrics / observability blocks alongside the solver
  // metrics.
  auto& reg = obs::Registry::global();
  static const int kTasks = reg.counter("sweep.tasks");
  static const int kIters = reg.counter("sweep.newton_iters");
  static const int kFallbacks = reg.counter("sweep.fallbacks");
  static const int kFailures = reg.counter("sweep.failures");
  static const int kWall =
      reg.histogram("sweep.task_wall_s", 1e-7, 10.0, 32);
  reg.add(kTasks);
  if (newton_iterations > 0) reg.add(kIters, newton_iterations);
  if (used_fallback) reg.add(kFallbacks);
  if (failed) reg.add(kFailures);
  reg.record(kWall, wall_seconds);
}

void Counters::record_wall(double wall_seconds) noexcept {
  record_solve(0, false, false, wall_seconds);
}

Counters::Snapshot Counters::snapshot() const noexcept {
  Snapshot s;
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.newton_iterations = newton_iterations_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  s.wall_total_s = static_cast<double>(
                       wall_total_ns_.load(std::memory_order_relaxed)) *
                   1e-9;
  const std::int64_t mn = wall_min_ns_.load(std::memory_order_relaxed);
  s.wall_min_s = mn < 0 ? 0.0 : static_cast<double>(mn) * 1e-9;
  s.wall_max_s =
      static_cast<double>(wall_max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

std::string Counters::summary(const std::string& label) const {
  return summary(snapshot(), label);
}

std::string Counters::summary(const Snapshot& s, const std::string& label) {
  char head[96];
  std::snprintf(head, sizeof head, "[solver counters%s%s] ",
                label.empty() ? "" : " ", label.c_str());
  if (s.tasks <= 0) {
    // A zero-solve snapshot has no meaningful per-solve averages: render a
    // plain marker instead of 0-task ratios (historically this path could
    // surface division artifacts in downstream formatting).
    return std::string(head) + "no solves recorded";
  }
  const double iters_per_solve = static_cast<double>(s.newton_iterations) /
                                 static_cast<double>(s.tasks);
  char body[256];
  std::snprintf(body, sizeof body,
                "tasks %lld | newton iters %lld (%.1f/solve) | "
                "nm fallbacks %lld | failures %lld",
                static_cast<long long>(s.tasks),
                static_cast<long long>(s.newton_iterations), iters_per_solve,
                static_cast<long long>(s.fallbacks),
                static_cast<long long>(s.failures));
  return std::string(head) + body + " | wall total " + fmt_time(s.wall_total_s) +
         " (mean " + fmt_time(s.wall_mean_s()) + ", min " +
         fmt_time(s.wall_min_s) + ", max " + fmt_time(s.wall_max_s) + ")";
}

void Counters::reset() noexcept {
  tasks_.store(0, std::memory_order_relaxed);
  newton_iterations_.store(0, std::memory_order_relaxed);
  fallbacks_.store(0, std::memory_order_relaxed);
  failures_.store(0, std::memory_order_relaxed);
  wall_total_ns_.store(0, std::memory_order_relaxed);
  wall_min_ns_.store(-1, std::memory_order_relaxed);
  wall_max_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace rlc::exec
