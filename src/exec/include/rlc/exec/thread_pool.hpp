#pragma once

/// \file thread_pool.hpp
/// Fixed-size thread pool and data-parallel loops for the sweep-shaped
/// workloads of this library (inductance sweeps of the stationarity solve,
/// randomized test trials, figure-bench grids).
///
/// Design constraints, in order:
///   * determinism — parallel_for / parallel_map produce results identical
///     to the serial loop and in input order, for any thread count;
///   * no oversubscription — one pool, sized once from the hardware (or the
///     RLC_NUM_THREADS override), shared by default across all callers;
///   * simplicity — a single mutex-protected task queue, no work stealing;
///     sweep tasks are coarse (one Newton solve each), so queue contention
///     is negligible against solve cost.
///
/// The calling thread participates in the loop: a pool of size n spawns
/// n - 1 workers, so size 1 means "run inline, spawn nothing" and the
/// serial semantics are exact by construction.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rlc/base/status.hpp"

namespace rlc::exec {

/// Upper bound accepted from RLC_NUM_THREADS: values above this are treated
/// as configuration errors (fall back to the hardware count) rather than an
/// instruction to spawn thousands of threads.
inline constexpr std::size_t kMaxThreadCount = 4096;

/// Parse an RLC_NUM_THREADS-style value.  Returns the thread count for a
/// positive integer in [1, kMaxThreadCount]; returns 0 — "use the hardware
/// count" — for null/empty/non-numeric/trailing-garbage input, zero,
/// negative values, and overflow, appending a one-line diagnostic to
/// `*warning` when provided.  Exposed for the regression tests.
std::size_t parse_thread_count(const char* text, std::string* warning = nullptr);

/// Strict variant for request-serving front-ends (rlc_run --threads,
/// rlc_serve): null/empty means "use the hardware count" (returns 0); a
/// valid positive integer in [1, kMaxThreadCount] is returned as-is; zero,
/// negative, non-numeric, and overflowing values get an invalid_argument
/// Status instead of the silent hardware-count fallback above.
rlc::StatusOr<std::size_t> parse_thread_count_strict(const char* text);

/// Thread count used by default-constructed pools: the RLC_NUM_THREADS
/// environment variable when set to a positive integer (validated by
/// parse_thread_count; malformed values warn once on stderr), otherwise
/// std::thread::hardware_concurrency() (minimum 1).
std::size_t default_thread_count();

class ThreadPool {
 public:
  /// n_threads = 0 picks default_thread_count().  The pool spawns
  /// n_threads - 1 workers; the caller of parallel_for is the n-th.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency of a loop run on this pool (workers + caller).
  std::size_t size() const noexcept { return size_; }

  /// Run fn(i) for every i in [0, n).  Blocks until all iterations finish.
  /// Iterations are distributed in contiguous chunks of `grain` indices
  /// (0 picks a chunk size that yields ~4 chunks per thread).  The first
  /// exception thrown by fn is rethrown here after the loop drains; later
  /// iterations that have not started are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

 private:
  struct Loop;
  void worker_main();
  void run_chunks(Loop& loop);

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::shared_ptr<Loop>> pending_;  // loops with unclaimed chunks
  bool shutdown_ = false;
};

/// The process-wide pool used when callers do not provide one.  Constructed
/// on first use with default_thread_count() threads.
ThreadPool& default_pool();

/// Apply fn to every element of items on `pool`, returning results in input
/// order (result type must be default-constructible).  Deterministic: the
/// output is identical to a serial std::transform for any thread count.
template <typename T, typename F>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, F&& fn)
    -> std::vector<decltype(fn(std::declval<const T&>()))> {
  std::vector<decltype(fn(std::declval<const T&>()))> out(items.size());
  pool.parallel_for(items.size(),
                    [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

/// parallel_map on the shared default pool.
template <typename T, typename F>
auto parallel_map(const std::vector<T>& items, F&& fn)
    -> std::vector<decltype(fn(std::declval<const T&>()))> {
  return parallel_map(default_pool(), items, std::forward<F>(fn));
}

}  // namespace rlc::exec
