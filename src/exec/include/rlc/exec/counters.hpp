#pragma once

/// \file counters.hpp
/// Lock-free solver instrumentation for parallel sweeps.
///
/// Since the rlc::obs registry landed, Counters is a thin compatibility
/// façade: every record_solve() both updates this instance (so each sweep
/// or scenario keeps its isolated envelope totals) and forwards to the
/// process-wide registry under the "sweep.*" metric names (so --metrics
/// and the observability block see the same activity without a second
/// instrumentation pass).
///
/// A Counters object is shared by all tasks of a sweep (or a whole bench
/// run) and accumulates, via atomics only:
///   * per-solve Newton iteration counts,
///   * Nelder-Mead fallback count,
///   * residual-solve failures (non-converged results),
///   * wall time per task (total / min / max).
/// snapshot() gives a consistent-enough view for reporting after the loop
/// has joined; summary() formats it for the figure benches.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace rlc::exec {

class Counters {
 public:
  /// Record one optimization task: its Newton iteration count, whether the
  /// Nelder-Mead fallback produced the answer, whether the solve failed to
  /// converge at all, and its wall time in seconds.
  void record_solve(std::int64_t newton_iterations, bool used_fallback,
                    bool failed, double wall_seconds) noexcept;

  /// Record a task that has only a wall time (e.g. a transient simulation).
  void record_wall(double wall_seconds) noexcept;

  struct Snapshot {
    std::int64_t tasks = 0;
    std::int64_t newton_iterations = 0;
    std::int64_t fallbacks = 0;
    std::int64_t failures = 0;
    double wall_total_s = 0.0;
    double wall_min_s = 0.0;  ///< 0 when no task was recorded
    double wall_max_s = 0.0;
    double wall_mean_s() const {
      return tasks > 0 ? wall_total_s / static_cast<double>(tasks) : 0.0;
    }
  };

  Snapshot snapshot() const noexcept;

  /// One-line-per-metric human-readable block, e.g. for bench output:
  ///   [solver counters] tasks 52 | newton iters 208 (4.0/solve) |
  ///   nm fallbacks 0 | failures 0 | wall total 12.3 ms (mean 0.24 ms,
  ///   min 0.11 ms, max 0.61 ms)
  std::string summary(const std::string& label = std::string()) const;

  /// Same formatting from an already-taken Snapshot — for per-scenario
  /// aggregation where the live Counters object is gone by render time.
  static std::string summary(const Snapshot& s,
                             const std::string& label = std::string());

  void reset() noexcept;

 private:
  std::atomic<std::int64_t> tasks_{0};
  std::atomic<std::int64_t> newton_iterations_{0};
  std::atomic<std::int64_t> fallbacks_{0};
  std::atomic<std::int64_t> failures_{0};
  std::atomic<std::int64_t> wall_total_ns_{0};
  std::atomic<std::int64_t> wall_min_ns_{-1};  // -1: nothing recorded yet
  std::atomic<std::int64_t> wall_max_ns_{0};
};

/// Wall-clock stopwatch for timing one task body.
class StopWatch {
 public:
  StopWatch() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace rlc::exec
