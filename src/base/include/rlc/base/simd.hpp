#pragma once

/// \file simd.hpp
/// Runtime-dispatched SIMD kernel layer for the batched math hot paths.
///
/// The library is built for a generic x86-64 (or non-x86) baseline; the
/// AVX2+FMA kernels live in their own translation unit compiled with
/// -mavx2 -mfma and are only ever CALLED after runtime cpuid detection says
/// the host supports them.  Callers pick a Level once (usually
/// active_level()) and hand it to the batch primitives; every primitive has
/// a scalar implementation that the test suite pins against the vector one
/// to <= 1e-12 relative error (in practice ~1 ulp).
///
/// Environment override: RLC_SIMD
///   * unset / "on" / "auto"  — use what cpuid detected,
///   * "off" / "scalar"       — force the scalar kernels,
///   * "avx2"                 — request AVX2; falls back to scalar when the
///                              host cannot run it.
/// Any other value throws std::invalid_argument on first use (same strict
/// contract as RLC_NUM_THREADS).  The result is cached process-wide.

#include <cstddef>

namespace rlc::simd {

enum class Level {
  kScalar = 0,  ///< portable std:: math, one lane at a time
  kAvx2 = 1,    ///< 4-wide double kernels (AVX2 + FMA)
};

/// Highest level this binary + CPU can run (cpuid; ignores RLC_SIMD).
Level detected_level() noexcept;

/// The level batch kernels should dispatch to: detected_level() narrowed
/// by the RLC_SIMD environment variable.  Cached on first call.
Level active_level();

/// "scalar" | "avx2" — the spelling used by the bench envelope `simd`
/// field and checked by scripts/validate_bench_json.py.
const char* level_name(Level level) noexcept;

/// level_name(active_level()).
const char* active_level_name();

/// RLC_SIMD parsing, exposed for tests: `value` is the raw env string
/// (nullptr = unset), `detected` the cpuid ceiling.  Throws
/// std::invalid_argument on an unknown spelling.
Level resolve_level(const char* value, Level detected);

// ---------------------------------------------------------------- kernels
//
// SoA batch primitives.  Input and output arrays must not alias except
// where noted; any n (including 0) is valid — vector kernels process the
// tail scalar.  All of them match the scalar std:: results to ~1 ulp;
// non-finite inputs produce the IEEE-expected non-finite outputs.

/// out[i] = exp(x[i])
void exp_pd(Level level, const double* x, double* out, std::size_t n);

/// s[i] = sin(x[i]), c[i] = cos(x[i]).  Arguments of huge magnitude
/// (|x| > ~2^31) fall back to scalar libm per lane so range reduction
/// never loses the quadrant.
void sincos_pd(Level level, const double* x, double* s, double* c,
               std::size_t n);

/// Complex exp, SoA: out_re[i] + i*out_im[i] = exp(re[i] + i*im[i]).
/// This is the one transcendental of the Eq. (1) batch kernel: cosh and
/// sinh of theta*h both come from a single cexp.
void cexp_pd(Level level, const double* re, const double* im, double* out_re,
             double* out_im, std::size_t n);

}  // namespace rlc::simd
