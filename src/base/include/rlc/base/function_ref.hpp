#pragma once

/// \file function_ref.hpp
/// rlc::FunctionRef<Sig>: a trivially-copyable, non-owning reference to a
/// callable — two words (object pointer + thunk), no heap, no virtual
/// dispatch machinery.  The hot-path replacement for `const std::function&`
/// parameters: a call costs one indirect jump, construction costs nothing,
/// and any callable (lambda, functor, std::function, function pointer)
/// binds implicitly.
///
/// Lifetime: a FunctionRef does NOT keep its target alive.  Passing a
/// temporary as a function argument is fine (the temporary outlives the
/// call), but never store a FunctionRef beyond the lifetime of what it was
/// bound to.

#include <memory>
#include <type_traits>
#include <utility>

namespace rlc {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable invocable as R(Args...).  The constraint keeps
  /// overload sets of differently-shaped FunctionRef parameters
  /// unambiguous (a per-point evaluator never converts to a batch one).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept {  // NOLINT(runtime/explicit)
    if constexpr (std::is_function_v<std::remove_reference_t<F>>) {
      // A plain function: store the function pointer itself (an object
      // pointer to the function would not fit the void* erasure).  The
      // function-pointer <-> void* round trip is conditionally-supported
      // but universal on the platforms this library targets.
      obj_ = reinterpret_cast<void*>(std::addressof(f));
      thunk_ = [](void* obj, Args... args) -> R {
        return reinterpret_cast<
            std::add_pointer_t<std::remove_reference_t<F>>>(obj)(
            std::forward<Args>(args)...);
      };
    } else {
      obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      thunk_ = [](void* obj, Args... args) -> R {
        return (*static_cast<std::remove_reference_t<F>*>(obj))(
            std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return thunk_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*thunk_)(void*, Args...);
};

}  // namespace rlc
