#pragma once

/// \file cancel.hpp
/// Cooperative cancellation and deadlines for long-running solves.
///
/// Design: the request layer (rlc::svc) installs a per-task ExecScope —
/// a cancellation token plus an absolute deadline — into a thread-local
/// slot; the numeric hot loops (Newton, Brent, Talbot) call
/// rlc::checkpoint() at ITERATION boundaries.  When no scope is installed
/// (every standalone/CLI use) the checkpoint is one thread-local load and
/// a predictable branch — effectively free — so the solvers stay untouched
/// for non-serving callers.  When a scope is active and its token fires or
/// its deadline passes, the checkpoint throws rlc::CancelledError, which
/// unwinds the solve and is converted to a deadline_exceeded / cancelled
/// Status at the public boundary (never escaping it).
///
/// Cancellation is COOPERATIVE: a solve stops at the next iteration
/// boundary, never mid-expression, so no partial state is ever observed.

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>

#include "rlc/base/status.hpp"

namespace rlc {

/// Thrown by checkpoint(); carries whether the stop was a cancellation or
/// a deadline expiry.  Internal unwind mechanism only — the svc boundary
/// converts it to a Status.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(StatusCode code)
      : std::runtime_error(code == StatusCode::kDeadlineExceeded
                               ? "deadline exceeded"
                               : "cancelled"),
        code_(code) {}
  StatusCode code() const { return code_; }
  /// The matching boundary Status.
  Status to_status() const { return {code_, what()}; }

 private:
  StatusCode code_;
};

class CancelSource;

/// Cheap, copyable view of a cancellation flag.  A default-constructed
/// token can never fire.
class CancelToken {
 public:
  CancelToken() = default;

  bool can_fire() const { return flag_ != nullptr; }
  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owner side of a cancellation flag.  request_cancel() is sticky and
/// thread-safe; tokens handed out before or after see it.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancelToken token() const { return CancelToken{flag_}; }
  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Absolute deadline on the steady clock.  Deadline::none() never expires;
/// after(0) is already expired — "spend no time at all" is a valid budget.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< none
  static Deadline none() { return {}; }
  static Deadline at(Clock::time_point tp) { return Deadline{tp}; }
  /// Expires `seconds` from now; infinity (or any non-finite / huge value)
  /// means none.
  static Deadline after(double seconds);

  bool has_deadline() const { return armed_; }
  bool expired() const { return armed_ && Clock::now() >= at_; }
  Clock::time_point time_point() const { return at_; }

 private:
  explicit Deadline(Clock::time_point tp) : at_(tp), armed_(true) {}
  Clock::time_point at_{};
  bool armed_ = false;
};

/// Snapshot of a thread's active execution scope — copyable, so a parallel
/// loop can carry the submitting thread's {token, deadline} onto its worker
/// threads (rlc::exec does exactly that; see ThreadPool::parallel_for).
struct ExecState {
  CancelToken token;
  Deadline deadline;

  bool armed() const {
    return token.can_fire() || deadline.has_deadline();
  }
};

/// The calling thread's current scope (an unarmed ExecState when none).
ExecState current_exec_state();

/// RAII guard installing {token, deadline} as the calling thread's active
/// execution scope.  Nests: the previous scope is restored on destruction.
/// Install one per request-task, on the thread that runs the solve.
class ExecScope {
 public:
  ExecScope(CancelToken token, Deadline deadline);
  explicit ExecScope(ExecState state);
  ~ExecScope();

  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  struct State {
    ExecState state;
    bool armed = false;  ///< token can fire or deadline set
  };
  State installed_;
  const State* previous_;

  friend void checkpoint();
  friend bool stop_requested();
  friend ExecState current_exec_state();
  static const State*& current();
};

/// Cooperative stop point for iterative solvers.  No active scope: one
/// thread-local load + branch (zero cost when unset).  Active scope: throws
/// CancelledError(kCancelled) if the token fired, then
/// CancelledError(kDeadlineExceeded) if the deadline passed.
void checkpoint();

/// Non-throwing probe, for code that prefers to drain gracefully.
bool stop_requested();

}  // namespace rlc
