#pragma once

/// \file version.hpp
/// Library version, stamped into every BENCH_*.json envelope and every
/// rlc_serve response so artifacts and wire traffic are attributable to
/// the build that produced them.

namespace rlc {

/// Semantic version string of the library ("<major>.<minor>.<patch>"),
/// taken from the CMake project version at configure time.
const char* version();

/// The API generation of the umbrella header rlc/rlc.hpp.  Bumped only on
/// breaking changes of the re-exported surface.
inline constexpr int kApiVersion = 1;

}  // namespace rlc
