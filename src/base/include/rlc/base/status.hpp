#pragma once

/// \file status.hpp
/// Error vocabulary of the public API surface: rlc::Status and
/// rlc::StatusOr<T>.
///
/// Boundary rule (see DESIGN.md "Errors"): exceptions are an INTERNAL
/// mechanism — deep numeric code may throw std::runtime_error /
/// std::invalid_argument freely, and the cooperative-cancellation
/// checkpoints unwind with rlc::CancelledError.  No exception crosses a
/// public entry point of the redesigned surface (rlc::svc, the checked
/// scenario/optimizer entry points): those catch at the boundary and
/// return a Status with a typed code instead, so callers dispatch on
/// status.code() rather than on exception types.

#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace rlc {

/// Typed error codes of the public surface.  Stable small integers: they
/// are stamped into rlc_serve responses, so renumbering is a wire break.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< malformed request / out-of-domain parameter
  kNotFound = 2,          ///< unknown scenario / technology name
  kNoConvergence = 3,     ///< solver exhausted its budget without an answer
  kDeadlineExceeded = 4,  ///< cooperative deadline fired inside a solve
  kCancelled = 5,         ///< cancellation token fired inside a solve
  kInternal = 6,          ///< unexpected exception caught at the boundary
};

/// Canonical lower-snake-case name ("ok", "invalid_argument", ...), the
/// spelling used in rlc_serve responses and logs.
const char* status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default is success (so `return {};` works from Status functions).
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status no_convergence(std::string m) {
    return {StatusCode::kNoConvergence, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status cancelled(std::string m) {
    return {StatusCode::kCancelled, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const char* code_name() const { return status_code_name(code_); }

  /// "ok" or "<code_name>: <message>".
  std::string to_string() const;

  bool operator==(const Status& o) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Thrown by callers that insist on a value from a failed StatusOr.
class BadStatusAccess : public std::logic_error {
 public:
  explicit BadStatusAccess(const Status& s)
      : std::logic_error("StatusOr::value() on error status: " +
                         s.to_string()),
        status_(s) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// A value or the Status explaining its absence.  Construction from a T is
/// implicit (so `return result;` works), as is construction from a non-ok
/// Status (so `return Status::invalid_argument(...)` works); constructing
/// from an OK status is a logic error and throws.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : has_value_(true) {
    ::new (static_cast<void*>(&storage_)) T(std::move(value));
  }
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.is_ok()) {
      throw std::logic_error("StatusOr constructed from an OK status");
    }
  }

  StatusOr(const StatusOr& o) : status_(o.status_), has_value_(o.has_value_) {
    if (has_value_) ::new (static_cast<void*>(&storage_)) T(o.ref());
  }
  StatusOr(StatusOr&& o) noexcept(std::is_nothrow_move_constructible_v<T>)
      : status_(std::move(o.status_)), has_value_(o.has_value_) {
    if (has_value_) ::new (static_cast<void*>(&storage_)) T(std::move(o.ref()));
  }
  // Assignment constructs into storage FIRST and flips has_value_ only on
  // success: if T's copy/move constructor throws, the destructor must not
  // run ~T over uninitialized storage.  (Basic guarantee: on throw *this is
  // valueless with the source's status.)
  StatusOr& operator=(const StatusOr& o) {
    if (this != &o) {
      destroy();
      status_ = o.status_;
      if (o.has_value_) {
        ::new (static_cast<void*>(&storage_)) T(o.ref());
        has_value_ = true;
      }
    }
    return *this;
  }
  StatusOr& operator=(StatusOr&& o) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &o) {
      destroy();
      status_ = std::move(o.status_);
      if (o.has_value_) {
        ::new (static_cast<void*>(&storage_)) T(std::move(o.ref()));
        has_value_ = true;
      }
    }
    return *this;
  }
  ~StatusOr() { destroy(); }

  bool is_ok() const { return has_value_; }
  /// OK when a value is present, the carried error otherwise.
  const Status& status() const { return status_; }

  /// The value; throws BadStatusAccess when holding an error.
  const T& value() const& {
    if (!has_value_) throw BadStatusAccess(status_);
    return ref();
  }
  T& value() & {
    if (!has_value_) throw BadStatusAccess(status_);
    return ref();
  }
  T&& value() && {
    if (!has_value_) throw BadStatusAccess(status_);
    return std::move(ref());
  }

  /// Unchecked access for the `if (r.is_ok())` pattern.
  const T& operator*() const& { return ref(); }
  T& operator*() & { return ref(); }
  const T* operator->() const { return &ref(); }
  T* operator->() { return &ref(); }

  T value_or(T fallback) const& {
    return has_value_ ? ref() : std::move(fallback);
  }

 private:
  const T& ref() const { return *std::launder(reinterpret_cast<const T*>(&storage_)); }
  T& ref() { return *std::launder(reinterpret_cast<T*>(&storage_)); }
  void destroy() {
    if (has_value_) {
      ref().~T();
      has_value_ = false;
    }
  }

  Status status_;
  alignas(T) unsigned char storage_[sizeof(T)];
  bool has_value_ = false;
};

}  // namespace rlc
