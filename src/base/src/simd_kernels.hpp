#pragma once

/// \file simd_kernels.hpp
/// Internal kernel entry points behind rlc/base/simd.hpp.  The _avx2
/// symbols live in simd_avx2.cpp, the only translation unit compiled with
/// -mavx2 -mfma; they must never be called unless cpuid reported AVX2+FMA
/// (simd.cpp's dispatch guarantees this).

#include <cstddef>

namespace rlc::simd::detail {

void exp_pd_scalar(const double* x, double* out, std::size_t n);
void sincos_pd_scalar(const double* x, double* s, double* c, std::size_t n);
void cexp_pd_scalar(const double* re, const double* im, double* out_re,
                    double* out_im, std::size_t n);

#if defined(RLC_SIMD_HAVE_AVX2)
void exp_pd_avx2(const double* x, double* out, std::size_t n);
void sincos_pd_avx2(const double* x, double* s, double* c, std::size_t n);
void cexp_pd_avx2(const double* re, const double* im, double* out_re,
                  double* out_im, std::size_t n);
#endif

}  // namespace rlc::simd::detail
