#include "rlc/base/simd.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "simd_kernels.hpp"

namespace rlc::simd {

namespace detail {

void exp_pd_scalar(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

void sincos_pd_scalar(const double* x, double* s, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = std::sin(x[i]);
    c[i] = std::cos(x[i]);
  }
}

void cexp_pd_scalar(const double* re, const double* im, double* out_re,
                    double* out_im, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double e = std::exp(re[i]);
    out_re[i] = e * std::cos(im[i]);
    out_im[i] = e * std::sin(im[i]);
  }
}

}  // namespace detail

Level detected_level() noexcept {
#if defined(RLC_SIMD_HAVE_AVX2)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

Level resolve_level(const char* value, Level detected) {
  if (value == nullptr) return detected;
  const std::string v(value);
  if (v.empty() || v == "on" || v == "auto") return detected;
  if (v == "off" || v == "scalar" || v == "0") return Level::kScalar;
  if (v == "avx2") {
    // A request, not a demand: a host without AVX2 still gets a correct
    // binary, just the scalar kernels.
    return detected == Level::kAvx2 ? Level::kAvx2 : Level::kScalar;
  }
  throw std::invalid_argument(
      "RLC_SIMD='" + v +
      "': expected one of off|scalar|0|avx2|on|auto (or unset)");
}

Level active_level() {
  static const Level level =
      resolve_level(std::getenv("RLC_SIMD"), detected_level());
  return level;
}

const char* level_name(Level level) noexcept {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

const char* active_level_name() { return level_name(active_level()); }

void exp_pd(Level level, const double* x, double* out, std::size_t n) {
#if defined(RLC_SIMD_HAVE_AVX2)
  if (level == Level::kAvx2) {
    detail::exp_pd_avx2(x, out, n);
    return;
  }
#endif
  (void)level;
  detail::exp_pd_scalar(x, out, n);
}

void sincos_pd(Level level, const double* x, double* s, double* c,
               std::size_t n) {
#if defined(RLC_SIMD_HAVE_AVX2)
  if (level == Level::kAvx2) {
    detail::sincos_pd_avx2(x, s, c, n);
    return;
  }
#endif
  (void)level;
  detail::sincos_pd_scalar(x, s, c, n);
}

void cexp_pd(Level level, const double* re, const double* im, double* out_re,
             double* out_im, std::size_t n) {
#if defined(RLC_SIMD_HAVE_AVX2)
  if (level == Level::kAvx2) {
    detail::cexp_pd_avx2(re, im, out_re, out_im, n);
    return;
  }
#endif
  (void)level;
  detail::cexp_pd_scalar(re, im, out_re, out_im, n);
}

}  // namespace rlc::simd
