#include "rlc/base/version.hpp"

#ifndef RLC_VERSION_STRING
#define RLC_VERSION_STRING "0.0.0"
#endif

namespace rlc {

const char* version() { return RLC_VERSION_STRING; }

}  // namespace rlc
