#include "rlc/base/status.hpp"

namespace rlc {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kNoConvergence: return "no_convergence";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = code_name();
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rlc
