#include "rlc/base/cancel.hpp"

#include <cmath>

namespace rlc {

Deadline Deadline::after(double seconds) {
  if (!std::isfinite(seconds)) return none();
  // Clamp the conversion: ~100 years of nanoseconds still fits, anything
  // larger is "no deadline" in every practical sense.
  constexpr double kMaxSeconds = 3.0e9;
  if (seconds >= kMaxSeconds) return none();
  if (seconds < 0.0) seconds = 0.0;
  return Deadline{Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds))};
}

const ExecScope::State*& ExecScope::current() {
  thread_local const State* active = nullptr;
  return active;
}

ExecState current_exec_state() {
  const ExecScope::State* s = ExecScope::current();
  return s ? s->state : ExecState{};
}

ExecScope::ExecScope(CancelToken token, Deadline deadline)
    : ExecScope(ExecState{std::move(token), deadline}) {}

ExecScope::ExecScope(ExecState state) {
  installed_.state = std::move(state);
  installed_.armed = installed_.state.armed();
  previous_ = current();
  current() = &installed_;
}

ExecScope::~ExecScope() { current() = previous_; }

void checkpoint() {
  const ExecScope::State* s = ExecScope::current();
  if (!s || !s->armed) return;
  if (s->state.token.cancel_requested()) {
    throw CancelledError(StatusCode::kCancelled);
  }
  if (s->state.deadline.expired()) {
    throw CancelledError(StatusCode::kDeadlineExceeded);
  }
}

bool stop_requested() {
  const ExecScope::State* s = ExecScope::current();
  if (!s || !s->armed) return false;
  return s->state.token.cancel_requested() || s->state.deadline.expired();
}

}  // namespace rlc
