/// \file simd_avx2.cpp
/// AVX2+FMA kernels behind rlc/base/simd.hpp.  This is the ONLY translation
/// unit compiled with -mavx2 -mfma; nothing here may be reached unless
/// runtime detection confirmed the host (simd.cpp dispatch).
///
/// exp: Cody-Waite reduction x = n*ln2 + r (|r| <= ln2/2) with the two-part
/// ln2 split folded into FMAs, degree-12 Taylor on r, exponent rebuilt by
/// integer bit manipulation in two steps so the subnormal tail scales
/// gradually.  sin/cos: three-part pi/2 Cody-Waite reduction (exact inside
/// the FMAs), degree-7-in-r^2 Taylor polynomials, branchless quadrant
/// swap/sign fixup; |x| beyond 1e8 (or non-finite) falls back to libm per
/// lane so the quadrant never degrades.  Both match libm to ~1 ulp — the
/// test suite pins scalar-vs-AVX2 agreement through the Eq. (1) kernel at
/// 1e-12 relative.

#if defined(RLC_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "simd_kernels.hpp"

namespace rlc::simd::detail {

namespace {

// exp(x) saturation bounds: above kExpHi the result overflows to inf,
// below kExpLo even the smallest subnormal rounds to zero.
constexpr double kExpHi = 709.782712893383996843;
constexpr double kExpLo = -745.133219101941108420;

// Beyond this magnitude the three-part reduction hands over to libm.
constexpr double kSinCosMax = 1.0e8;

inline __m256d pow2_from_epi32(__m128i k) {
  __m256i k64 = _mm256_cvtepi32_epi64(k);
  k64 = _mm256_add_epi64(k64, _mm256_set1_epi64x(1023));
  k64 = _mm256_slli_epi64(k64, 52);
  return _mm256_castsi256_pd(k64);
}

/// exp of 4 doubles.  NaN in -> NaN out; +-inf saturate correctly.
inline __m256d exp4(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.44269504088896340736);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);

  const __m256d nf = _mm256_round_pd(
      _mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(nf, ln2_hi, x);
  r = _mm256_fnmadd_pd(nf, ln2_lo, r);

  // Taylor 1/k! for k = 2..12: remainder < 2e-16 relative at |r| <= ln2/2.
  __m256d q = _mm256_set1_pd(2.08767569878680989792e-9);
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(2.50521083854417187751e-8));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(2.75573192239858906526e-7));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(2.75573192239858906526e-6));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(2.48015873015873015873e-5));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.98412698412698412698e-4));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.38888888888888888889e-3));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(8.33333333333333333333e-3));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(4.16666666666666666667e-2));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(1.66666666666666666667e-1));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(0.5));
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d e = _mm256_add_pd(_mm256_fmadd_pd(q, r2, r), _mm256_set1_pd(1.0));

  // 2^n in two halves so n down to -1075 (subnormal results) stays in the
  // representable exponent range of each factor.
  const __m128i ni = _mm256_cvtpd_epi32(nf);
  const __m128i n1 = _mm_srai_epi32(ni, 1);
  const __m128i n2 = _mm_sub_epi32(ni, n1);
  e = _mm256_mul_pd(_mm256_mul_pd(e, pow2_from_epi32(n1)),
                    pow2_from_epi32(n2));

  const __m256d hi = _mm256_cmp_pd(x, _mm256_set1_pd(kExpHi), _CMP_GT_OQ);
  const __m256d lo = _mm256_cmp_pd(x, _mm256_set1_pd(kExpLo), _CMP_LT_OQ);
  e = _mm256_blendv_pd(e, _mm256_set1_pd(HUGE_VAL), hi);
  e = _mm256_andnot_pd(lo, e);  // underflow lanes -> +0.0
  return e;
}

struct SinCos4 {
  __m256d s, c;
  int fallback;  ///< movemask of lanes needing the libm path
};

/// sin and cos of 4 doubles; lanes flagged in `fallback` hold garbage and
/// must be recomputed scalar by the caller.
inline SinCos4 sincos4(__m256d x) {
  const __m256d two_over_pi = _mm256_set1_pd(6.36619772367581382433e-1);
  // fdlibm three-part pi/2; products are exact inside the FMAs.
  const __m256d pio2_1 = _mm256_set1_pd(1.57079632673412561417e+00);
  const __m256d pio2_2 = _mm256_set1_pd(6.07710050630396597660e-11);
  const __m256d pio2_3 = _mm256_set1_pd(2.02226624871116645580e-21);

  const __m256d absx =
      _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
  // NLE is true for > kSinCosMax AND for NaN (unordered): both go scalar.
  const int fallback = _mm256_movemask_pd(
      _mm256_cmp_pd(absx, _mm256_set1_pd(kSinCosMax), _CMP_NLE_UQ));

  const __m256d nf =
      _mm256_round_pd(_mm256_mul_pd(x, two_over_pi),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m128i ni = _mm256_cvtpd_epi32(nf);
  __m256d r = _mm256_fnmadd_pd(nf, pio2_1, x);
  r = _mm256_fnmadd_pd(nf, pio2_2, r);
  r = _mm256_fnmadd_pd(nf, pio2_3, r);
  const __m256d y = _mm256_mul_pd(r, r);

  // sin(r) = r + r^3 P(r^2), Taylor to r^15.
  __m256d p = _mm256_set1_pd(-7.64716373181981647590e-13);
  p = _mm256_fmadd_pd(p, y, _mm256_set1_pd(1.60590438368216145994e-10));
  p = _mm256_fmadd_pd(p, y, _mm256_set1_pd(-2.50521083854417187751e-8));
  p = _mm256_fmadd_pd(p, y, _mm256_set1_pd(2.75573192239858906526e-6));
  p = _mm256_fmadd_pd(p, y, _mm256_set1_pd(-1.98412698412698412698e-4));
  p = _mm256_fmadd_pd(p, y, _mm256_set1_pd(8.33333333333333333333e-3));
  p = _mm256_fmadd_pd(p, y, _mm256_set1_pd(-1.66666666666666666667e-1));
  const __m256d sin_r = _mm256_fmadd_pd(_mm256_mul_pd(r, y), p, r);

  // cos(r) = 1 - r^2/2 + r^4 Q(r^2), Taylor to r^16.
  __m256d q = _mm256_set1_pd(4.77947733238738529744e-14);
  q = _mm256_fmadd_pd(q, y, _mm256_set1_pd(-1.14707455977297247139e-11));
  q = _mm256_fmadd_pd(q, y, _mm256_set1_pd(2.08767569878680989792e-9));
  q = _mm256_fmadd_pd(q, y, _mm256_set1_pd(-2.75573192239858906526e-7));
  q = _mm256_fmadd_pd(q, y, _mm256_set1_pd(2.48015873015873015873e-5));
  q = _mm256_fmadd_pd(q, y, _mm256_set1_pd(-1.38888888888888888889e-3));
  q = _mm256_fmadd_pd(q, y, _mm256_set1_pd(4.16666666666666666667e-2));
  const __m256d cos_r = _mm256_fmadd_pd(
      _mm256_mul_pd(y, y), q, _mm256_fnmadd_pd(_mm256_set1_pd(0.5), y,
                                               _mm256_set1_pd(1.0)));

  // Quadrant q = n mod 4 (two's complement keeps the low bits right for
  // negative n): odd quadrants swap sin/cos, bit patterns below pick signs.
  const __m128i one = _mm_set1_epi32(1);
  const __m128i two = _mm_set1_epi32(2);
  const __m256d swap = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(
      _mm_cmpeq_epi32(_mm_and_si128(ni, one), one)));
  const __m256d sneg = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(
      _mm_cmpeq_epi32(_mm_and_si128(ni, two), two)));
  const __m256d cneg = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(
      _mm_cmpeq_epi32(_mm_and_si128(_mm_add_epi32(ni, one), two), two)));

  const __m256d signbit = _mm256_set1_pd(-0.0);
  SinCos4 out;
  out.s = _mm256_xor_pd(_mm256_blendv_pd(sin_r, cos_r, swap),
                        _mm256_and_pd(sneg, signbit));
  out.c = _mm256_xor_pd(_mm256_blendv_pd(cos_r, sin_r, swap),
                        _mm256_and_pd(cneg, signbit));
  out.fallback = fallback;
  return out;
}

}  // namespace

void exp_pd_avx2(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, exp4(_mm256_loadu_pd(x + i)));
  }
  if (i < n) exp_pd_scalar(x + i, out + i, n - i);
}

void sincos_pd_avx2(const double* x, double* s, double* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const SinCos4 sc = sincos4(_mm256_loadu_pd(x + i));
    _mm256_storeu_pd(s + i, sc.s);
    _mm256_storeu_pd(c + i, sc.c);
    if (sc.fallback) {
      for (int lane = 0; lane < 4; ++lane) {
        if (sc.fallback & (1 << lane)) {
          s[i + lane] = std::sin(x[i + lane]);
          c[i + lane] = std::cos(x[i + lane]);
        }
      }
    }
  }
  if (i < n) sincos_pd_scalar(x + i, s + i, c + i, n - i);
}

void cexp_pd_avx2(const double* re, const double* im, double* out_re,
                  double* out_im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d e = exp4(_mm256_loadu_pd(re + i));
    SinCos4 sc = sincos4(_mm256_loadu_pd(im + i));
    if (sc.fallback) {
      alignas(32) double sl[4], cl[4];
      _mm256_store_pd(sl, sc.s);
      _mm256_store_pd(cl, sc.c);
      for (int lane = 0; lane < 4; ++lane) {
        if (sc.fallback & (1 << lane)) {
          sl[lane] = std::sin(im[i + lane]);
          cl[lane] = std::cos(im[i + lane]);
        }
      }
      sc.s = _mm256_load_pd(sl);
      sc.c = _mm256_load_pd(cl);
    }
    _mm256_storeu_pd(out_re + i, _mm256_mul_pd(e, sc.c));
    _mm256_storeu_pd(out_im + i, _mm256_mul_pd(e, sc.s));
  }
  if (i < n) cexp_pd_scalar(re + i, im + i, out_re + i, out_im + i, n - i);
}

}  // namespace rlc::simd::detail

#endif  // RLC_SIMD_HAVE_AVX2
