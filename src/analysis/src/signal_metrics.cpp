#include "rlc/analysis/signal_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlc::analysis {

std::vector<double> threshold_crossings(std::span<const double> t,
                                        std::span<const double> y,
                                        double threshold, Edge edge) {
  if (t.size() != y.size()) {
    throw std::invalid_argument("threshold_crossings: size mismatch");
  }
  std::vector<double> out;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double y0 = y[i - 1], y1 = y[i];
    const bool crosses = (edge == Edge::kRising)
                             ? (y0 < threshold && y1 >= threshold)
                             : (y0 > threshold && y1 <= threshold);
    if (!crosses) continue;
    const double frac = (threshold - y0) / (y1 - y0);
    out.push_back(t[i - 1] + frac * (t[i] - t[i - 1]));
  }
  return out;
}

std::optional<double> first_crossing_after(std::span<const double> t,
                                           std::span<const double> y,
                                           double threshold, Edge edge,
                                           double t_min) {
  const auto xs = threshold_crossings(t, y, threshold, edge);
  for (double x : xs) {
    if (x >= t_min) return x;
  }
  return std::nullopt;
}

std::optional<double> oscillation_period(std::span<const double> t,
                                         std::span<const double> y,
                                         double threshold, double t_begin,
                                         int min_cycles) {
  auto xs = threshold_crossings(t, y, threshold, Edge::kRising);
  std::erase_if(xs, [t_begin](double x) { return x < t_begin; });
  if (static_cast<int>(xs.size()) < min_cycles + 1) return std::nullopt;
  // Mean spacing over all settled cycles.
  return (xs.back() - xs.front()) / static_cast<double>(xs.size() - 1);
}

RailExcursion rail_excursion(std::span<const double> y, double vdd) {
  RailExcursion r;
  if (y.empty()) return r;
  r.v_max = *std::max_element(y.begin(), y.end());
  r.v_min = *std::min_element(y.begin(), y.end());
  r.overshoot = std::max(0.0, r.v_max - vdd);
  r.undershoot = std::max(0.0, -r.v_min);
  return r;
}

std::optional<double> rise_time(std::span<const double> t,
                                std::span<const double> y, double v_final,
                                double lo_frac, double hi_frac) {
  if (!(v_final != 0.0) || !(lo_frac < hi_frac)) {
    throw std::invalid_argument("rise_time: invalid thresholds");
  }
  const auto lo = first_crossing_after(t, y, lo_frac * v_final, Edge::kRising,
                                       t.empty() ? 0.0 : t.front());
  const auto hi = first_crossing_after(t, y, hi_frac * v_final, Edge::kRising,
                                       t.empty() ? 0.0 : t.front());
  if (!lo || !hi || *hi < *lo) return std::nullopt;
  return *hi - *lo;
}

std::optional<double> settling_time(std::span<const double> t,
                                    std::span<const double> y, double v_final,
                                    double band) {
  if (t.size() != y.size() || t.empty()) {
    throw std::invalid_argument("settling_time: size mismatch");
  }
  if (!(band > 0.0)) throw std::invalid_argument("settling_time: band must be > 0");
  const double tol = band * std::abs(v_final);
  // Walk backwards: find the last sample OUTSIDE the band.
  std::size_t last_out = t.size();  // sentinel: none
  for (std::size_t i = t.size(); i-- > 0;) {
    if (std::abs(y[i] - v_final) > tol) {
      last_out = i;
      break;
    }
  }
  if (last_out == t.size()) return t.front();      // always inside
  if (last_out == t.size() - 1) return std::nullopt;  // never settles
  return t[last_out + 1];
}

GlitchCount count_crossings(std::span<const double> t,
                            std::span<const double> y, double threshold) {
  GlitchCount g;
  g.rising = static_cast<int>(
      threshold_crossings(t, y, threshold, Edge::kRising).size());
  g.falling = static_cast<int>(
      threshold_crossings(t, y, threshold, Edge::kFalling).size());
  return g;
}

}  // namespace rlc::analysis
