#include "rlc/analysis/reliability.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/math/stats.hpp"

namespace rlc::analysis {

OxideStress oxide_stress(std::span<const double> v_gate, double vdd,
                         double margin) {
  if (!(vdd > 0.0)) throw std::domain_error("oxide_stress: vdd must be > 0");
  OxideStress s;
  for (double v : v_gate) s.v_peak = std::max(s.v_peak, std::abs(v));
  s.overstress_ratio = s.v_peak / vdd;
  s.exceeds_margin = s.v_peak > vdd * margin;
  return s;
}

CurrentDensity current_density(std::span<const double> t,
                               std::span<const double> i, double area,
                               double j_rms_budget, double j_peak_budget) {
  if (!(area > 0.0)) throw std::domain_error("current_density: area must be > 0");
  CurrentDensity cd;
  cd.j_peak = rlc::math::peak_abs(i) / area;
  cd.j_rms = rlc::math::rms_trapz(t, i) / area;
  cd.em_concern = cd.j_rms > j_rms_budget;
  cd.joule_concern = cd.j_peak > j_peak_budget;
  return cd;
}

}  // namespace rlc::analysis
