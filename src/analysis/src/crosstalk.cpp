#include "rlc/analysis/crosstalk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rlc/math/brent.hpp"

namespace rlc::analysis {

namespace {

/// Miller factor per neighbour for the coupling caps.
double miller_factor(SwitchingMode mode) {
  switch (mode) {
    case SwitchingMode::kInPhase:
      return 0.0;
    case SwitchingMode::kVictimQuiet:
      return 1.0;
    case SwitchingMode::kAntiPhase:
      return 2.0;
  }
  throw std::domain_error("miller_effective_capacitance: bad mode");
}

}  // namespace

double miller_effective_capacitance(double c, double cc, SwitchingMode mode,
                                    int neighbours) {
  if (!(c >= 0.0) || !(cc >= 0.0)) {
    throw std::domain_error(
        "miller_effective_capacitance: c and cc must be >= 0");
  }
  if (neighbours < 0) {
    throw std::domain_error(
        "miller_effective_capacitance: neighbours must be >= 0");
  }
  return c + static_cast<double>(neighbours) * miller_factor(mode) * cc;
}

NoiseEstimate two_exponential_noise(double tau_a, double tau_b,
                                    double amplitude) {
  if (!(tau_a > 0.0) || !(tau_b > 0.0)) {
    throw std::domain_error(
        "two_exponential_noise: time constants must be > 0");
  }
  NoiseEstimate out;
  const double tau_f = std::min(tau_a, tau_b);
  const double tau_s = std::max(tau_a, tau_b);
  if (tau_f == tau_s || amplitude == 0.0) return out;

  const double r = tau_f / tau_s;
  // t* where the two decay rates balance; v there via the closed form.
  out.t_peak = tau_f * tau_s * std::log(tau_s / tau_f) / (tau_s - tau_f);
  out.peak = std::abs(amplitude) * (std::pow(r, r / (1.0 - r)) -
                                    std::pow(r, 1.0 / (1.0 - r)));

  // Half-magnitude crossings bracket t_peak: v is monotone on each side
  // (single interior extremum), rising from 0 and decaying back to 0.
  const auto v = [&](double t) {
    return std::abs(amplitude) *
           (std::exp(-t / tau_s) - std::exp(-t / tau_f));
  };
  const double half = 0.5 * out.peak;
  double t_hi = out.t_peak;
  while (v(t_hi) >= half) t_hi *= 2.0;
  const auto left = rlc::math::brent_root(
      [&](double t) { return v(t) - half; }, 0.0, out.t_peak, 1e-12 * tau_s);
  const auto right = rlc::math::brent_root(
      [&](double t) { return v(t) - half; }, out.t_peak, t_hi, 1e-12 * tau_s);
  if (left.converged && right.converged) out.width = right.x - left.x;
  return out;
}

NoiseEstimate modal_victim_noise(double tau_even, double tau_odd,
                                 double swing) {
  return two_exponential_noise(tau_even, tau_odd, 0.5 * swing);
}

NoiseEstimate peak_noise_metrics(std::span<const double> t,
                                 std::span<const double> v, double baseline) {
  if (t.size() != v.size()) {
    throw std::invalid_argument(
        "peak_noise_metrics: t and v must have equal length");
  }
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!(t[i] > t[i - 1])) {
      throw std::invalid_argument(
          "peak_noise_metrics: t must be strictly increasing");
    }
  }
  NoiseEstimate out;
  if (t.empty()) return out;

  std::size_t k = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (std::abs(v[i] - baseline) > std::abs(v[k] - baseline)) k = i;
  }
  out.peak = std::abs(v[k] - baseline);
  out.t_peak = t[k];
  if (out.peak == 0.0) return out;

  // Half-magnitude width, linearly interpolated on the record; records
  // that never drop below half on a side are credited up to the edge.
  const double sign = v[k] >= baseline ? 1.0 : -1.0;
  const auto dev = [&](std::size_t i) { return sign * (v[i] - baseline); };
  const double half = 0.5 * out.peak;
  double t_left = t.front();
  for (std::size_t i = k; i-- > 0;) {
    if (dev(i) < half) {
      const double den = dev(i + 1) - dev(i);
      t_left = t[i] + (t[i + 1] - t[i]) *
                          (den > 0.0 ? (half - dev(i)) / den : 0.0);
      break;
    }
  }
  double t_right = t.back();
  for (std::size_t i = k + 1; i < v.size(); ++i) {
    if (dev(i) < half) {
      const double den = dev(i - 1) - dev(i);
      t_right = t[i - 1] + (t[i] - t[i - 1]) *
                               (den > 0.0 ? (dev(i - 1) - half) / den : 0.0);
      break;
    }
  }
  out.width = std::max(0.0, t_right - t_left);
  return out;
}

}  // namespace rlc::analysis
