#pragma once

/// \file reliability.hpp
/// Reliability assessments of Section 3.3.2: gate-oxide overstress caused by
/// voltage overshoot at repeater inputs, and interconnect Joule-heating /
/// electromigration exposure from peak and rms wire current densities.

#include <span>

namespace rlc::analysis {

/// Gate-oxide stress from a waveform applied to a MOS gate.
struct OxideStress {
  double v_peak = 0.0;        ///< worst-case |gate voltage| seen [V]
  double overstress_ratio = 0.0;  ///< v_peak / vdd (1.0 = rail)
  bool exceeds_margin = false;    ///< v_peak > vdd * margin
};

/// Assess the oxide stress of a gate waveform; `margin` is the tolerated
/// fractional excursion above VDD (supply voltage scales with oxide
/// thickness precisely to cap the oxide field, so sustained v > vdd wears
/// the oxide; 10% is a typical budget).
OxideStress oxide_stress(std::span<const double> v_gate, double vdd,
                         double margin = 1.10);

/// Interconnect current-density exposure.
struct CurrentDensity {
  double j_peak = 0.0;  ///< peak |J| [A/m^2]
  double j_rms = 0.0;   ///< time-weighted rms J [A/m^2]
  bool em_concern = false;    ///< j_rms above the electromigration budget
  bool joule_concern = false; ///< j_peak above the self-heating budget
};

/// Compute current densities from a wire-current waveform i(t) and the wire
/// cross-section area.  Budgets default to the classical limits used in the
/// paper's reference [28] (rms ~ 2e10 A/m^2 EM budget, peak ~ 1e12 A/m^2
/// transient self-heating scale).
CurrentDensity current_density(std::span<const double> t,
                               std::span<const double> i, double area,
                               double j_rms_budget = 2e10,
                               double j_peak_budget = 1e12);

}  // namespace rlc::analysis
