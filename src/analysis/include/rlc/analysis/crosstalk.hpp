#pragma once

/// \file crosstalk.hpp
/// Closed-form crosstalk-noise metrics for coupled interconnect.
///
/// The analytical coupled engine (rlc::core exact_coupled_*) recomposes
/// victim waveforms from modal responses; these helpers provide the
/// closed-form surrogate the optimizer's noise-constrained mode uses for
/// seeding and the scenarios report alongside the exact numbers:
///
///   * the Miller-range effective capacitance of Section 1.1 (the
///     switching-dependent factor on the coupling caps),
///   * the one-pole modal surrogate of victim noise: when each mode is
///     approximated by v_j(t) = 1 - exp(-t/tau_j), the quiet victim of a
///     2-conductor bus sees a difference of exponentials whose peak, peak
///     time and half-magnitude width have closed forms,
///   * sampled-waveform noise metrics (peak / t_peak / width) for
///     measured or simulated records.
///
/// Layering: depends on rlc_math only — modal time constants come from the
/// caller (two-pole segment delays of the modal lines), keeping this header
/// free of transmission-line types.

#include <span>

namespace rlc::analysis {

/// Aggressor-relative switching of the neighbours (paper Section 1.1).
enum class SwitchingMode {
  kVictimQuiet,  ///< neighbours held: coupling caps see the full edge
  kInPhase,      ///< neighbours switch along: coupling caps see no edge
  kAntiPhase,    ///< neighbours switch against: Miller-doubled coupling
};

/// Effective per-unit-length capacitance seen by a conductor of a
/// symmetric bus: c plus the Miller-weighted coupling to `neighbours`
/// nearest neighbours (0x / 1x / 2x per neighbour for in-phase / quiet /
/// anti-phase).  Throws std::domain_error on negative c/cc or
/// neighbours < 0.
double miller_effective_capacitance(double c, double cc, SwitchingMode mode,
                                    int neighbours = 1);

/// Peak / timing / width of a crosstalk-noise pulse.
struct NoiseEstimate {
  double peak = 0.0;    ///< max |v(t)| over t > 0
  double t_peak = 0.0;  ///< argmax time
  double width = 0.0;   ///< time with |v(t)| >= peak/2
};

/// Closed-form metrics of the two-exponential pulse
///   v(t) = amplitude * (exp(-t/tau_slow) - exp(-t/tau_fast)),
/// the one-pole modal surrogate of quiet-victim noise.  The peak has the
/// classical closed form amplitude * (r^{r/(1-r)} - r^{1/(1-r)}) at
/// t_peak = tau_f tau_s ln(tau_s/tau_f)/(tau_s - tau_f) with
/// r = tau_fast/tau_slow; the half-magnitude width is resolved by two
/// bracketed Brent solves on the same expression.  The order of the two
/// time constants does not matter; equal time constants give a zero pulse.
/// Throws std::domain_error on non-positive time constants.
NoiseEstimate two_exponential_noise(double tau_a, double tau_b,
                                    double amplitude);

/// Quiet-victim surrogate of a symmetric 2-conductor bus: the victim sees
/// swing/2 * (exp(-t/tau_odd) - exp(-t/tau_even)) when each mode is a
/// one-pole response with the given time constants.
NoiseEstimate modal_victim_noise(double tau_even, double tau_odd,
                                 double swing = 1.0);

/// Sampled-record counterpart: peak |v - baseline|, its time, and the
/// linearly interpolated half-magnitude width around the peak.  t must be
/// strictly increasing and match v in length (throws std::invalid_argument
/// otherwise); an empty record returns zeros.
NoiseEstimate peak_noise_metrics(std::span<const double> t,
                                 std::span<const double> v, double baseline);

}  // namespace rlc::analysis
