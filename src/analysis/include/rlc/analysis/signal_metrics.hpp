#pragma once

/// \file signal_metrics.hpp
/// Waveform measurements for the circuit-level experiments: threshold
/// crossings, oscillation period, overshoot/undershoot and glitch (false
/// transition) detection — the quantities behind Figures 9-11.

#include <optional>
#include <span>
#include <vector>

namespace rlc::analysis {

enum class Edge { kRising, kFalling };

/// Times at which y(t) crosses `threshold` with the given edge direction,
/// linearly interpolated between samples.  t must be strictly increasing.
std::vector<double> threshold_crossings(std::span<const double> t,
                                        std::span<const double> y,
                                        double threshold, Edge edge);

/// First crossing (either edge) after t_min, if any.
std::optional<double> first_crossing_after(std::span<const double> t,
                                           std::span<const double> y,
                                           double threshold, Edge edge,
                                           double t_min);

/// Mean spacing of consecutive rising crossings of `threshold` within
/// [t_begin, end] — the oscillation period of a settled oscillator.
/// Returns nullopt when fewer than `min_cycles + 1` crossings are found.
std::optional<double> oscillation_period(std::span<const double> t,
                                         std::span<const double> y,
                                         double threshold, double t_begin,
                                         int min_cycles = 3);

/// Signal extremes relative to the rails (0, vdd):
struct RailExcursion {
  double overshoot = 0.0;   ///< max(y) - vdd, clamped at 0
  double undershoot = 0.0;  ///< -min(y), clamped at 0
  double v_max = 0.0;
  double v_min = 0.0;
};
RailExcursion rail_excursion(std::span<const double> y, double vdd);

/// 10-90% (by default) rise time of a step-like waveform with final value
/// v_final: time between the first crossings of lo_frac*v_final and
/// hi_frac*v_final.  nullopt if either level is never reached.
std::optional<double> rise_time(std::span<const double> t,
                                std::span<const double> y, double v_final,
                                double lo_frac = 0.1, double hi_frac = 0.9);

/// Settling time: the earliest time after which |y - v_final| stays within
/// band*|v_final| for the remainder of the record.  nullopt if the waveform
/// never settles within the band.
std::optional<double> settling_time(std::span<const double> t,
                                    std::span<const double> y, double v_final,
                                    double band = 0.02);

/// Count "extra" threshold crossings per nominal switching event — a proxy
/// for glitches/false transitions: for a clean periodic signal the number
/// of rising crossings equals the number of falling crossings equals the
/// cycle count; ringing through the threshold adds pairs.
struct GlitchCount {
  int rising = 0;
  int falling = 0;
};
GlitchCount count_crossings(std::span<const double> t,
                            std::span<const double> y, double threshold);

}  // namespace rlc::analysis
