#pragma once

/// \file coupled_bus.hpp
/// Two inductively and capacitively coupled RLC lines — the
/// aggressor/victim crosstalk configuration motivating the paper's
/// Section 1.1/3 discussion of switching-dependent effective capacitance
/// (Miller factor up to 4x) and return-path-dependent inductance.
///
/// Each line is a pi-ladder; per segment, a coupling capacitor (cc * dx)
/// connects corresponding junctions and a mutual-inductance K element
/// couples the corresponding series inductors.

#include "rlc/core/technology.hpp"
#include "rlc/ringosc/ladder.hpp"

namespace rlc::ringosc {

/// Per-unit-length coupling parameters of the pair.
struct CouplingParams {
  double cc = 0.0;  ///< line-to-line capacitance per unit length [F/m]
  double km = 0.0;  ///< inductive coupling coefficient, |km| < 1 (0 disables)
};

struct CoupledBus {
  Ladder aggressor;
  Ladder victim;
};

/// Build two coupled ladders between (a_from -> a_to) and (v_from -> v_to).
/// Both lines use `line` for their self parameters.
CoupledBus add_coupled_ladders(rlc::spice::Circuit& ckt,
                               const std::string& name,
                               rlc::spice::NodeId a_from, rlc::spice::NodeId a_to,
                               rlc::spice::NodeId v_from, rlc::spice::NodeId v_to,
                               const rlc::tline::LineParams& line,
                               const CouplingParams& coupling, double length,
                               int nseg);

/// Crosstalk experiment: aggressor driven by a repeater switching rail to
/// rail, victim held quiet by its own repeater; measures the peak noise at
/// the victim's far end and the aggressor 50% delay for in-phase /
/// anti-phase / quiet-victim switching (the Miller-range experiment).
struct CrosstalkResult {
  bool completed = false;
  double victim_peak_noise = 0.0;    ///< [V] when the victim is quiet
  double delay_quiet = 0.0;          ///< aggressor delay, victim quiet [s]
  double delay_inphase = 0.0;        ///< victim switches with the aggressor
  double delay_antiphase = 0.0;      ///< victim switches against
};

CrosstalkResult run_crosstalk(const rlc::core::Technology& tech,
                              const CouplingParams& coupling, double l,
                              double h, double k, int nseg = 16);

/// N coupled pi-ladders forming the homogenized symmetric bus that
/// rlc::tline::symmetric_bus models analytically: nearest-neighbour
/// coupling caps (cc * dx) between corresponding junctions, mutual-K
/// elements between corresponding inductors, and — for n >= 3 — a
/// compensating (shield) cap to ground on the edge conductors so every
/// conductor sees the same total shunt capacitance.  Returns one Ladder
/// per conductor.  n = 2 reproduces add_coupled_ladders exactly.
std::vector<Ladder> add_coupled_bus(rlc::spice::Circuit& ckt,
                                    const std::string& name,
                                    const std::vector<rlc::spice::NodeId>& from,
                                    const std::vector<rlc::spice::NodeId>& to,
                                    const rlc::tline::LineParams& line,
                                    const CouplingParams& coupling,
                                    double length, int nseg);

/// Full-waveform MNA reference for the analytical coupled engine: every
/// conductor is driven through its own repeater (Rs + Cp) by a step from
/// initial[i] to target[i] (near-ideal edges), loaded by Cl, with the whole
/// bus pre-charged to the initial levels.  Far-end voltages are sampled on
/// the solver grid up to tstop.
struct CoupledStepResult {
  bool completed = false;
  std::vector<double> time;                   ///< sample times [s]
  std::vector<std::vector<double>> far_end;   ///< [conductor][sample] [V]
};

CoupledStepResult run_coupled_step(const rlc::core::Technology& tech,
                                   const CouplingParams& coupling, double l,
                                   double h, double k,
                                   const std::vector<double>& initial,
                                   const std::vector<double>& target,
                                   double tstop, int steps, int nseg = 16);

}  // namespace rlc::ringosc
