#pragma once

/// \file ladder.hpp
/// Discretization of a distributed RLC line into a ladder of lumped
/// pi-segments for transient simulation: each segment carries r*dx in series
/// with l*dx, with c*dx/2 shunts at both segment ends (interior nodes
/// accumulate a full c*dx).  The segment count needed for a given accuracy
/// is studied by bench/ablation_ladder.

#include <string>
#include <vector>

#include "rlc/spice/circuit.hpp"
#include "rlc/tline/line.hpp"

namespace rlc::ringosc {

/// Handles to the ladder internals (for probing currents/voltages).
struct Ladder {
  std::vector<rlc::spice::NodeId> nodes;        ///< from-end ... to-end (size nseg+1)
  std::vector<rlc::spice::NodeId> mid_nodes;    ///< internal R-L junction per segment
  std::vector<rlc::spice::Resistor*> resistors; ///< per-segment series R
  std::vector<rlc::spice::Inductor*> inductors; ///< per-segment series L

  /// Every node of the ladder except the two endpoints (for setting
  /// consistent initial conditions).
  std::vector<rlc::spice::NodeId> interior_nodes() const {
    std::vector<rlc::spice::NodeId> out(nodes.begin() + 1, nodes.end() - 1);
    out.insert(out.end(), mid_nodes.begin(), mid_nodes.end());
    return out;
  }

  /// Series resistor of the middle segment (wire-current probe point).
  rlc::spice::Resistor* middle_resistor() const {
    return resistors[resistors.size() / 2];
  }
};

/// Build a pi-ladder between existing nodes `from` and `to`.
/// When line.l == 0 the inductors are omitted (pure RC ladder).
Ladder add_rlc_ladder(rlc::spice::Circuit& ckt, const std::string& name,
                      rlc::spice::NodeId from, rlc::spice::NodeId to,
                      const rlc::tline::LineParams& line, double length,
                      int nseg);

}  // namespace rlc::ringosc
