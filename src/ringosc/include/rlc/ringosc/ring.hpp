#pragma once

/// \file ring.hpp
/// The circuit-level experiments of Section 3.3: an N-stage ring oscillator
/// whose stages are size-k inverters driving length-h RLC lines (Figures
/// 9-12), and the square-wave-driven buffered line used as the non-ring
/// control experiment.

#include <optional>
#include <vector>

#include "rlc/analysis/reliability.hpp"
#include "rlc/analysis/signal_metrics.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/ringosc/inverter.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::ringosc {

/// Structural parameters of the ring / buffered line.
struct RingParams {
  int stages = 5;            ///< number of inverter stages (odd for a ring)
  int segments_per_line = 24;
  double l = 0.0;            ///< line inductance per unit length [H/m]
  double h = 0.0;            ///< line length per stage [m]
  double k = 0.0;            ///< inverter size
};

/// Simulation controls.  Zero tstop/dt mean "derive from the estimated
/// stage delay" (the two-pole model provides the estimate).
struct RingSimOptions {
  double dt = 0.0;
  double tstop = 0.0;
  double settle_cycles = 6.0;  ///< ignore this many estimated periods
  int min_cycles = 3;          ///< required crossings for a period estimate
};

/// Everything the Section 3.3 figures need from one ring simulation.
struct RingResult {
  bool completed = false;
  std::optional<double> period;  ///< oscillation period [s] (Figure 11)
  rlc::analysis::RailExcursion input_excursion;  ///< at the probed inverter input
  rlc::analysis::CurrentDensity wire_density;    ///< mid-wire (Figure 12)
  // Waveforms of the probed stage (Figures 9-10); times after settling.
  std::vector<double> time;
  std::vector<double> v_in;    ///< probed inverter input (far end of its line)
  std::vector<double> v_out;   ///< probed inverter output
  std::vector<double> i_wire;  ///< mid-wire current [A]
  double t_estimate = 0.0;     ///< estimated period used for scaling [s]
};

/// Build and simulate the ring oscillator.
RingResult simulate_ring(const rlc::core::Technology& tech,
                         const RingParams& params,
                         const RingSimOptions& sim = {});

/// The control experiment: `stages` repeaters in a chain, each driving a
/// length-h line, excited by a square wave; used to show the false-switching
/// phenomenon is not a ring artifact (end of Section 3.3.1).
struct BufferedLineResult {
  bool completed = false;
  /// Rising output transitions per rising input transition; > 1 indicates
  /// false switching.
  double transition_ratio = 0.0;
  rlc::analysis::RailExcursion mid_excursion;
  std::vector<double> time;
  std::vector<double> v_out;
};
BufferedLineResult simulate_buffered_line(const rlc::core::Technology& tech,
                                          const RingParams& params,
                                          double drive_period, int cycles = 6,
                                          const RingSimOptions& sim = {});

}  // namespace rlc::ringosc
