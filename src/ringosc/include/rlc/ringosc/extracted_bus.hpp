#pragma once

/// \file extracted_bus.hpp
/// Geometry-to-waveforms pipeline: build an N-line coupled bus whose
/// electrical parameters come from the extraction substrate instead of
/// hand-picked numbers — the shunt capacitances (ground and line-to-line)
/// from the 2D BEM Maxwell matrix, and the inductances (self and mutual
/// coupling coefficients) from the partial-inductance matrix.  This is the
/// full FASTCAP/FASTHENRY -> SPICE flow the paper's experimental setup
/// implies, in one call.

#include <utility>

#include "rlc/core/technology.hpp"
#include "rlc/linalg/matrix.hpp"
#include "rlc/ringosc/ladder.hpp"

namespace rlc::ringosc {

struct ExtractedBusOptions {
  int nseg = 12;          ///< ladder segments per line
  int bem_panels = 10;    ///< BEM panels per rectangle side
  /// false: CAPACITIVE coupling only between nearest neighbours (electric
  /// fields are short-range; the far off-diagonals of the Maxwell matrix
  /// are negligible).  INDUCTIVE coupling is always kept between all pairs:
  /// truncating the mutual-inductance matrix to nearest neighbours makes it
  /// indefinite (non-passive) for strongly coupled buses — the circuit
  /// blows up.  That asymmetry is precisely the paper's Section 1.1 point
  /// that magnetic fields are long-range while electric fields are not.
  bool couple_all_pairs = true;
};

struct ExtractedBus {
  std::vector<Ladder> lines;
  rlc::linalg::MatrixD cmatrix;  ///< Maxwell capacitance matrix [F/m]
  rlc::linalg::MatrixD lmatrix;  ///< partial inductance matrix [H] (whole length)
  double l_self = 0.0;           ///< per-unit-length self inductance used [H/m]
};

/// Build the bus between the given (from, to) endpoint pairs (one per line,
/// in cross-section order).  Wire geometry, pitch, height and dielectric
/// come from the technology; per-unit-length r from the technology as well.
ExtractedBus add_extracted_bus(
    rlc::spice::Circuit& ckt, const std::string& name,
    const std::vector<std::pair<rlc::spice::NodeId, rlc::spice::NodeId>>& ends,
    const rlc::core::Technology& tech, double length,
    const ExtractedBusOptions& opts = {});

}  // namespace rlc::ringosc
