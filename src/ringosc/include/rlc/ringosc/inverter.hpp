#pragma once

/// \file inverter.hpp
/// CMOS inverter cell calibrated to the paper's repeater abstraction: a
/// size-k inverter exhibits output resistance ~ r_s/k, input capacitance
/// c_0 k and output parasitic capacitance c_p k (Table 1 values).
///
/// Calibration: the level-1 transconductance factor is chosen so that the
/// effective switching resistance of the minimum device matches r_s using
/// the standard average-current approximation R_eff ~ 3 VDD / (4 I_dsat)
/// (the linearized-repeater assumption the paper itself makes).  Input and
/// output capacitances are attached as linear capacitors, exactly mirroring
/// the Section 2.1 driver model.

#include "rlc/core/technology.hpp"
#include "rlc/spice/circuit.hpp"

namespace rlc::ringosc {

/// MOS threshold assumption: vt = kVtFraction * VDD (typical DSM ratio).
inline constexpr double kVtFraction = 0.22;

/// Channel-length-modulation default.
inline constexpr double kLambda = 0.05;

/// Level-1 beta of the *minimum-size* device such that
/// R_eff = 3 VDD / (4 * 0.5 beta (VDD - VT)^2) equals rep.rs.
double unit_beta(const rlc::core::Technology& tech);

/// NMOS / PMOS parameters for the technology (symmetric drive strengths).
rlc::spice::MosParams nmos_params(const rlc::core::Technology& tech);
rlc::spice::MosParams pmos_params(const rlc::core::Technology& tech);

/// Handle to the devices of one inverter instance.
struct InverterCell {
  rlc::spice::Mosfet* pmos = nullptr;
  rlc::spice::Mosfet* nmos = nullptr;
  rlc::spice::Capacitor* cin = nullptr;   ///< c0 * k at the input
  rlc::spice::Capacitor* cout = nullptr;  ///< cp * k at the output
};

/// Add a size-k inverter between `in` and `out` supplied from `vdd_node`.
/// Gate input capacitance (c0 k) and output parasitic (cp k) are attached
/// to ground as linear capacitors.
InverterCell add_inverter(rlc::spice::Circuit& ckt, const std::string& name,
                          rlc::spice::NodeId in, rlc::spice::NodeId out,
                          rlc::spice::NodeId vdd_node,
                          const rlc::core::Technology& tech, double k);

/// Static (DC-swept) switching threshold of the calibrated inverter —
/// useful for tests; for the symmetric sizing used here it sits at VDD/2.
double inverter_switching_threshold(const rlc::core::Technology& tech);

}  // namespace rlc::ringosc
