#include "rlc/ringosc/extracted_bus.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/extract/bem2d.hpp"
#include "rlc/extract/inductance.hpp"

namespace rlc::ringosc {

using rlc::spice::Circuit;
using rlc::spice::NodeId;

ExtractedBus add_extracted_bus(
    Circuit& ckt, const std::string& name,
    const std::vector<std::pair<NodeId, NodeId>>& ends,
    const rlc::core::Technology& tech, double length,
    const ExtractedBusOptions& opts) {
  const int n = static_cast<int>(ends.size());
  if (n < 1) throw std::invalid_argument("add_extracted_bus: need >= 1 line");
  if (!(length > 0.0) || opts.nseg < 1) {
    throw std::invalid_argument("add_extracted_bus: bad length/nseg");
  }

  ExtractedBus bus;

  // ---- Capacitance extraction (BEM, Maxwell matrix). ----
  rlc::extract::Bem2dOptions bopts;
  bopts.panels_per_side = opts.bem_panels;
  bopts.eps_r = tech.eps_r;
  const auto wires = rlc::extract::parallel_bus(n, tech.width, tech.thickness,
                                                tech.pitch, tech.t_ins);
  bus.cmatrix = rlc::extract::capacitance_matrix(wires, bopts);

  // ---- Inductance extraction (partial matrix over the bus length). ----
  std::vector<double> positions;
  for (const auto& w : wires) positions.push_back(w.x_center);
  bus.lmatrix = rlc::extract::partial_inductance_matrix(
      positions, length, tech.width, tech.thickness);
  bus.l_self = bus.lmatrix(0, 0) / length;

  // ---- Build the ladders.  Ground capacitance per line = Maxwell row sum
  //      (total cap to everything minus the line-to-line parts, which are
  //      added explicitly as coupling capacitors). ----
  for (int i = 0; i < n; ++i) {
    double cg = 0.0;
    for (int j = 0; j < n; ++j) cg += bus.cmatrix(i, j);  // row sum >= 0
    cg = std::max(cg, 1e-3 * bus.cmatrix(i, i));  // defensive floor
    const rlc::tline::LineParams line{tech.r, bus.l_self, cg};
    bus.lines.push_back(add_rlc_ladder(ckt, name + ".w" + std::to_string(i),
                                       ends[i].first, ends[i].second, line,
                                       length, opts.nseg));
  }

  // ---- Coupling: capacitors between junctions, K elements between the
  //      per-segment inductors. ----
  const double dx = length / opts.nseg;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Capacitive coupling may be truncated to neighbours; mutual
      // inductance must NOT be (see ExtractedBusOptions::couple_all_pairs).
      const bool cap_coupled = opts.couple_all_pairs || j == i + 1;
      const double cc = -bus.cmatrix(i, j);  // off-diagonals are negative
      const double km =
          bus.lmatrix(i, j) / std::sqrt(bus.lmatrix(i, i) * bus.lmatrix(j, j));
      for (int s = 0; s < opts.nseg; ++s) {
        if (cap_coupled && cc > 0.0) {
          ckt.add_capacitor(
              name + ".cc" + std::to_string(i) + "_" + std::to_string(j) +
                  "_" + std::to_string(s),
              bus.lines[i].nodes[s + 1], bus.lines[j].nodes[s + 1], cc * dx);
        }
        if (km != 0.0) {
          ckt.add_mutual(name + ".k" + std::to_string(i) + "_" +
                             std::to_string(j) + "_" + std::to_string(s),
                         *bus.lines[i].inductors[s], *bus.lines[j].inductors[s],
                         km);
        }
      }
    }
  }
  return bus;
}

}  // namespace rlc::ringosc
