#include "rlc/ringosc/inverter.hpp"

namespace rlc::ringosc {

using rlc::core::Technology;
using rlc::spice::Circuit;
using rlc::spice::MosParams;
using rlc::spice::MosType;
using rlc::spice::NodeId;

double unit_beta(const Technology& tech) {
  const double vt = kVtFraction * tech.vdd;
  const double vov = tech.vdd - vt;
  // rs = 3 VDD / (2 beta vov^2)  =>  beta = 3 VDD / (2 rs vov^2).
  return 3.0 * tech.vdd / (2.0 * tech.rep.rs * vov * vov);
}

MosParams nmos_params(const Technology& tech) {
  MosParams p;
  p.type = MosType::kNmos;
  p.vt = kVtFraction * tech.vdd;
  p.beta = unit_beta(tech);
  p.lambda = kLambda;
  return p;
}

MosParams pmos_params(const Technology& tech) {
  MosParams p = nmos_params(tech);
  p.type = MosType::kPmos;
  return p;
}

InverterCell add_inverter(Circuit& ckt, const std::string& name, NodeId in,
                          NodeId out, NodeId vdd_node, const Technology& tech,
                          double k) {
  InverterCell cell;
  cell.pmos = &ckt.add_mosfet(name + ".mp", out, in, vdd_node,
                              pmos_params(tech), k);
  cell.nmos = &ckt.add_mosfet(name + ".mn", out, in, ckt.ground(),
                              nmos_params(tech), k);
  cell.cin = &ckt.add_capacitor(name + ".cin", in, ckt.ground(),
                                tech.rep.c0 * k);
  cell.cout = &ckt.add_capacitor(name + ".cout", out, ckt.ground(),
                                 tech.rep.cp * k);
  return cell;
}

double inverter_switching_threshold(const Technology& tech) {
  // Symmetric betas and thresholds => the static switching point is VDD/2.
  return 0.5 * tech.vdd;
}

}  // namespace rlc::ringosc
