#include "rlc/ringosc/ladder.hpp"

#include <stdexcept>

namespace rlc::ringosc {

using rlc::spice::Circuit;
using rlc::spice::NodeId;

Ladder add_rlc_ladder(Circuit& ckt, const std::string& name, NodeId from,
                      NodeId to, const rlc::tline::LineParams& line,
                      double length, int nseg) {
  if (nseg < 1) throw std::invalid_argument("add_rlc_ladder: nseg must be >= 1");
  if (!(length > 0.0)) throw std::invalid_argument("add_rlc_ladder: length must be > 0");
  if (!(line.r > 0.0 && line.c > 0.0 && line.l >= 0.0)) {
    throw std::invalid_argument("add_rlc_ladder: invalid line parameters");
  }
  const double dx = length / nseg;
  const double rseg = line.r * dx;
  const double lseg = line.l * dx;
  const double cseg = line.c * dx;

  Ladder lad;
  lad.nodes.push_back(from);
  for (int i = 1; i < nseg; ++i) {
    lad.nodes.push_back(ckt.node(name + ".n" + std::to_string(i)));
  }
  lad.nodes.push_back(to);

  for (int i = 0; i < nseg; ++i) {
    const NodeId a = lad.nodes[i];
    const NodeId b = lad.nodes[i + 1];
    const std::string seg = name + ".s" + std::to_string(i);
    if (lseg > 0.0) {
      // a --R-- mid --L-- b
      const NodeId mid = ckt.node(seg + ".m");
      lad.mid_nodes.push_back(mid);
      lad.resistors.push_back(&ckt.add_resistor(seg + ".r", a, mid, rseg));
      lad.inductors.push_back(&ckt.add_inductor(seg + ".l", mid, b, lseg));
    } else {
      lad.resistors.push_back(&ckt.add_resistor(seg + ".r", a, b, rseg));
    }
    // Pi shunt capacitances: half at each end of the segment.
    ckt.add_capacitor(seg + ".ca", a, ckt.ground(), 0.5 * cseg);
    ckt.add_capacitor(seg + ".cb", b, ckt.ground(), 0.5 * cseg);
  }
  return lad;
}

}  // namespace rlc::ringosc
