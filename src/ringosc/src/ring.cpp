#include "rlc/ringosc/ring.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"

namespace rlc::ringosc {

using rlc::core::Technology;
using rlc::spice::Circuit;
using rlc::spice::NodeId;
using rlc::spice::Probe;

namespace {

/// Estimated per-stage delay from the two-pole model — used only to scale
/// dt/tstop, so a rough value is fine.
double estimate_stage_delay(const Technology& tech, const RingParams& p) {
  const auto dr = rlc::core::segment_delay(tech.rep, tech.line(p.l), p.h, p.k);
  if (dr.converged) return dr.tau;
  // Fall back to the Elmore scale.
  return rlc::core::elmore_segment_delay(tech.rep, tech.r, tech.c, p.h, p.k);
}

void check_params(const RingParams& p) {
  if (p.stages < 3 || p.stages % 2 == 0) {
    throw std::invalid_argument("RingParams: stages must be odd and >= 3");
  }
  if (p.segments_per_line < 1 || !(p.h > 0.0) || !(p.k > 0.0) || !(p.l >= 0.0)) {
    throw std::invalid_argument("RingParams: invalid line/driver parameters");
  }
}

}  // namespace

RingResult simulate_ring(const Technology& tech, const RingParams& params,
                         const RingSimOptions& sim) {
  check_params(params);
  RingResult res;

  // Time scales: a ring of N stages oscillates with period ~ 2 N tau_stage.
  const double tau_stage = estimate_stage_delay(tech, params);
  const double t_period_est = 2.0 * params.stages * tau_stage;
  res.t_estimate = t_period_est;
  const double tstop =
      sim.tstop > 0.0 ? sim.tstop : (sim.settle_cycles + 10.0) * t_period_est;
  const double record_start = sim.settle_cycles * t_period_est;
  double dt = sim.dt > 0.0 ? sim.dt : t_period_est / 4000.0;
  dt = std::clamp(dt, 1e-15, tstop / 100.0);

  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("vsupply", vdd, ckt.ground(), rlc::spice::DcSpec{tech.vdd});

  // Stage i: inverter input in[i] -> output out[i]; line from out[i] to
  // in[(i+1) % stages].
  std::vector<NodeId> in(params.stages), out(params.stages);
  for (int i = 0; i < params.stages; ++i) {
    in[i] = ckt.node("in" + std::to_string(i));
    out[i] = ckt.node("out" + std::to_string(i));
  }
  Ladder probe_ladder;
  std::vector<Ladder> ladders;
  for (int i = 0; i < params.stages; ++i) {
    add_inverter(ckt, "inv" + std::to_string(i), in[i], out[i], vdd, tech,
                 params.k);
    Ladder lad = add_rlc_ladder(ckt, "line" + std::to_string(i), out[i],
                                in[(i + 1) % params.stages], tech.line(params.l),
                                params.h, params.segments_per_line);
    if (i == 0) probe_ladder = lad;
    ladders.push_back(std::move(lad));
  }

  rlc::spice::TransientOptions topts;
  topts.tstop = tstop;
  topts.dt = dt;
  topts.record_start = record_start;
  // Start the ring in a logically consistent state with exactly ONE
  // inconsistency (a single traveling wavefront at the stage-(N-1) -> 0
  // wrap), so it settles into the fundamental oscillation mode instead of a
  // higher harmonic: stage inputs alternate VDD/0 (N odd leaves one clash).
  const auto in_logic = [&](int i) { return (i % 2 == 0) ? tech.vdd : 0.0; };
  for (int i = 0; i < params.stages; ++i) {
    const double vi = in_logic(i);
    const double vo = tech.vdd - vi;
    topts.initial_voltages.emplace_back(in[i], vi);
    topts.initial_voltages.emplace_back(out[i], vo);
    // Line i sits at the driving output's logic level.
    for (const NodeId nd : ladders[i].interior_nodes()) {
      topts.initial_voltages.emplace_back(nd, vo);
    }
  }
  // Probe the stage-1 inverter: its input is the far end of line 0 (the
  // waveform with the overshoot/undershoot of Figures 9-10), its output is
  // out[1]; the wire current is the middle series resistor of line 0.
  topts.probes = {
      Probe::node_voltage(in[1], "v_in"),
      Probe::node_voltage(out[1], "v_out"),
      Probe::resistor_current(*probe_ladder.middle_resistor(), "i_wire"),
  };

  auto tran = rlc::spice::run_transient(ckt, topts);
  res.completed = tran.completed;
  if (!tran.completed || tran.time.size() < 8) return res;

  res.time = tran.time;
  res.v_in = tran.signal("v_in");
  res.v_out = tran.signal("v_out");
  res.i_wire = tran.signal("i_wire");

  res.period = rlc::analysis::oscillation_period(
      res.time, res.v_out, 0.5 * tech.vdd, res.time.front(), sim.min_cycles);
  res.input_excursion = rlc::analysis::rail_excursion(res.v_in, tech.vdd);
  res.wire_density = rlc::analysis::current_density(
      res.time, res.i_wire, tech.width * tech.thickness);
  return res;
}

BufferedLineResult simulate_buffered_line(const Technology& tech,
                                          const RingParams& params,
                                          double drive_period, int cycles,
                                          const RingSimOptions& sim) {
  check_params(params);
  if (!(drive_period > 0.0) || cycles < 1) {
    throw std::invalid_argument("simulate_buffered_line: bad drive spec");
  }
  BufferedLineResult res;

  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("vsupply", vdd, ckt.ground(), rlc::spice::DcSpec{tech.vdd});

  const NodeId drive = ckt.node("drive");
  rlc::spice::PulseSpec pulse;
  pulse.v1 = 0.0;
  pulse.v2 = tech.vdd;
  pulse.delay = 0.05 * drive_period;
  pulse.rise = 0.01 * drive_period;
  pulse.fall = 0.01 * drive_period;
  pulse.width = 0.5 * drive_period - pulse.rise;
  pulse.period = drive_period;
  ckt.add_vsource("vdrive", drive, ckt.ground(), pulse);

  // Chain: drive -> inv0 -> line0 -> inv1 -> line1 -> ... -> final repeater
  // loaded by an identical repeater ("the other end connected to an
  // identical repeater").
  NodeId prev = drive;
  for (int i = 0; i < params.stages; ++i) {
    const NodeId o = ckt.node("o" + std::to_string(i));
    const NodeId n = ckt.node("n" + std::to_string(i));
    add_inverter(ckt, "inv" + std::to_string(i), prev, o, vdd, tech, params.k);
    add_rlc_ladder(ckt, "line" + std::to_string(i), o, n, tech.line(params.l),
                   params.h, params.segments_per_line);
    prev = n;
  }
  const NodeId sink = ckt.node("sink");
  add_inverter(ckt, "invL", prev, sink, vdd, tech, params.k);

  rlc::spice::TransientOptions topts;
  topts.tstop = cycles * drive_period;
  topts.dt = sim.dt > 0.0 ? sim.dt : drive_period / 4000.0;
  topts.record_start = drive_period;  // skip the start-up transient
  topts.probes = {
      Probe::node_voltage(sink, "v_out"),
      Probe::node_voltage(prev, "v_last_in"),
  };
  auto tran = rlc::spice::run_transient(ckt, topts);
  res.completed = tran.completed;
  if (!tran.completed || tran.time.size() < 8) return res;

  res.time = tran.time;
  res.v_out = tran.signal("v_out");
  const auto gc = rlc::analysis::count_crossings(res.time, res.v_out,
                                                 0.5 * tech.vdd);
  const double observed_window = res.time.back() - res.time.front();
  const double drive_edges = observed_window / drive_period;  // rising edges
  res.transition_ratio =
      drive_edges > 0.0 ? static_cast<double>(gc.rising) / drive_edges : 0.0;
  res.mid_excursion = rlc::analysis::rail_excursion(
      tran.signal("v_last_in"), tech.vdd);
  return res;
}

}  // namespace rlc::ringosc
