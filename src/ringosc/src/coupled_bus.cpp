#include "rlc/ringosc/coupled_bus.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/analysis/signal_metrics.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::ringosc {

using rlc::spice::Circuit;
using rlc::spice::NodeId;

CoupledBus add_coupled_ladders(Circuit& ckt, const std::string& name,
                               NodeId a_from, NodeId a_to, NodeId v_from,
                               NodeId v_to, const rlc::tline::LineParams& line,
                               const CouplingParams& coupling, double length,
                               int nseg) {
  if (!(coupling.cc >= 0.0) || !(std::abs(coupling.km) < 1.0)) {
    throw std::invalid_argument("add_coupled_ladders: invalid coupling");
  }
  if (coupling.km != 0.0 && line.l <= 0.0) {
    throw std::invalid_argument(
        "add_coupled_ladders: inductive coupling requires line.l > 0");
  }
  CoupledBus bus;
  bus.aggressor =
      add_rlc_ladder(ckt, name + ".a", a_from, a_to, line, length, nseg);
  bus.victim =
      add_rlc_ladder(ckt, name + ".v", v_from, v_to, line, length, nseg);
  const double dx = length / nseg;
  for (int i = 0; i < nseg; ++i) {
    // Coupling capacitance between corresponding segment junctions.
    if (coupling.cc > 0.0) {
      ckt.add_capacitor(name + ".cc" + std::to_string(i),
                        bus.aggressor.nodes[i + 1], bus.victim.nodes[i + 1],
                        coupling.cc * dx);
    }
    if (coupling.km != 0.0) {
      ckt.add_mutual(name + ".k" + std::to_string(i),
                     *bus.aggressor.inductors[i], *bus.victim.inductors[i],
                     coupling.km);
    }
  }
  return bus;
}

namespace {

/// One coupled-pair transient; returns (aggressor 50% delay, victim far-end
/// peak deviation from its quiet level).
struct PairRun {
  double delay = -1.0;
  double victim_peak = 0.0;
};

enum class VictimDrive { kQuiet, kInPhase, kAntiPhase };

PairRun run_pair(const rlc::core::Technology& tech,
                 const CouplingParams& coupling, double l, double h, double k,
                 int nseg, VictimDrive victim_mode) {
  const auto dl = tech.rep.scaled(k);
  // Time scale from the two-pole model with the quiet-neighbour capacitance.
  rlc::tline::LineParams line_eff = tech.line(l);
  line_eff.c += 2.0 * coupling.cc;
  const auto est = rlc::core::segment_delay(tech.rep, line_eff, h, k);
  const double tau = est.converged
                         ? est.tau
                         : rlc::core::rc_optimum(tech.rep, tech.r, tech.c).tau;

  Circuit ckt;
  const auto asrc = ckt.node("asrc"), adrv = ckt.node("adrv"), aend = ckt.node("aend");
  const auto vsrc = ckt.node("vsrc"), vdrv = ckt.node("vdrv"), vend = ckt.node("vend");
  const rlc::spice::PulseSpec rise{0, 1, 0, 1e-14, 1e-14, 1, 0};
  const rlc::spice::PulseSpec fall{1, 0, 0, 1e-14, 1e-14, 1, 0};
  ckt.add_vsource("Va", asrc, ckt.ground(), rise);
  switch (victim_mode) {
    case VictimDrive::kQuiet:
      ckt.add_vsource("Vv", vsrc, ckt.ground(), rlc::spice::DcSpec{0.0});
      break;
    case VictimDrive::kInPhase:
      ckt.add_vsource("Vv", vsrc, ckt.ground(), rise);
      break;
    case VictimDrive::kAntiPhase:
      ckt.add_vsource("Vv", vsrc, ckt.ground(), fall);
      break;
  }
  ckt.add_resistor("Rsa", asrc, adrv, dl.rs_eff);
  ckt.add_resistor("Rsv", vsrc, vdrv, dl.rs_eff);
  ckt.add_capacitor("Cpa", adrv, ckt.ground(), dl.cp_eff);
  ckt.add_capacitor("Cpv", vdrv, ckt.ground(), dl.cp_eff);
  add_coupled_ladders(ckt, "bus", adrv, aend, vdrv, vend, tech.line(l),
                      coupling, h, nseg);
  ckt.add_capacitor("Cla", aend, ckt.ground(), dl.cl_eff);
  ckt.add_capacitor("Clv", vend, ckt.ground(), dl.cl_eff);
  // Anti-phase starts with the victim line charged high.
  rlc::spice::TransientOptions o;
  o.tstop = 12.0 * tau;
  o.dt = tau / 400.0;
  if (victim_mode == VictimDrive::kAntiPhase) {
    o.initial_voltages.emplace_back(vsrc, 1.0);
    o.initial_voltages.emplace_back(vdrv, 1.0);
    o.initial_voltages.emplace_back(vend, 1.0);
    // Interior victim nodes start high as well.
    for (NodeId nd = 0; nd < ckt.node_count(); ++nd) {
      const auto& nm = ckt.node_name(nd);
      if (nm.rfind("bus.v", 0) == 0) o.initial_voltages.emplace_back(nd, 1.0);
    }
  }
  o.probes = {rlc::spice::Probe::node_voltage(aend, "a"),
              rlc::spice::Probe::node_voltage(vend, "v")};
  const auto tr = run_transient(ckt, o);
  PairRun out;
  if (!tr.completed) return out;
  const auto& va = tr.signal("a");
  const auto& vv = tr.signal("v");
  const auto cross = rlc::analysis::first_crossing_after(
      tr.time, va, 0.5, rlc::analysis::Edge::kRising, 0.0);
  out.delay = cross.value_or(-1.0);
  const double quiet_level = victim_mode == VictimDrive::kAntiPhase ? 1.0 : 0.0;
  if (victim_mode == VictimDrive::kQuiet) {
    for (double v : vv) out.victim_peak = std::max(out.victim_peak,
                                                   std::abs(v - quiet_level));
  }
  return out;
}

}  // namespace

std::vector<Ladder> add_coupled_bus(Circuit& ckt, const std::string& name,
                                    const std::vector<NodeId>& from,
                                    const std::vector<NodeId>& to,
                                    const rlc::tline::LineParams& line,
                                    const CouplingParams& coupling,
                                    double length, int nseg) {
  const std::size_t n = from.size();
  if (n == 0 || to.size() != n) {
    throw std::invalid_argument("add_coupled_bus: from/to size mismatch");
  }
  if (!(coupling.cc >= 0.0) || !(std::abs(coupling.km) < 1.0)) {
    throw std::invalid_argument("add_coupled_bus: invalid coupling");
  }
  if (n > 1 && coupling.km != 0.0 && line.l <= 0.0) {
    throw std::invalid_argument(
        "add_coupled_bus: inductive coupling requires line.l > 0");
  }
  std::vector<Ladder> bus;
  bus.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    bus.push_back(add_rlc_ladder(ckt, name + ".w" + std::to_string(w),
                                 from[w], to[w], line, length, nseg));
  }
  if (n == 1) return bus;
  const double dx = length / nseg;
  // d_max = max path-graph degree: the homogenization target every
  // conductor's total coupling load is padded up to.
  const int d_max = n >= 3 ? 2 : 1;
  for (std::size_t w = 0; w + 1 < n; ++w) {
    for (int i = 0; i < nseg; ++i) {
      if (coupling.cc > 0.0) {
        ckt.add_capacitor(
            name + ".cc" + std::to_string(w) + "_" + std::to_string(i),
            bus[w].nodes[i + 1], bus[w + 1].nodes[i + 1], coupling.cc * dx);
      }
      if (coupling.km != 0.0) {
        ckt.add_mutual(
            name + ".k" + std::to_string(w) + "_" + std::to_string(i),
            *bus[w].inductors[i], *bus[w + 1].inductors[i], coupling.km);
      }
    }
  }
  if (coupling.cc > 0.0) {
    for (std::size_t w = 0; w < n; ++w) {
      const int deg = (w == 0 || w + 1 == n) ? 1 : 2;
      const double shield = (d_max - deg) * coupling.cc;
      if (shield <= 0.0) continue;
      for (int i = 0; i < nseg; ++i) {
        ckt.add_capacitor(
            name + ".cs" + std::to_string(w) + "_" + std::to_string(i),
            bus[w].nodes[i + 1], ckt.ground(), shield * dx);
      }
    }
  }
  return bus;
}

CoupledStepResult run_coupled_step(const rlc::core::Technology& tech,
                                   const CouplingParams& coupling, double l,
                                   double h, double k,
                                   const std::vector<double>& initial,
                                   const std::vector<double>& target,
                                   double tstop, int steps, int nseg) {
  const std::size_t n = initial.size();
  if (n == 0 || target.size() != n) {
    throw std::invalid_argument(
        "run_coupled_step: initial/target size mismatch");
  }
  if (!(tstop > 0.0) || steps < 2) {
    throw std::invalid_argument("run_coupled_step: bad time grid");
  }
  const auto dl = tech.rep.scaled(k);

  Circuit ckt;
  std::vector<NodeId> src(n), drv(n), end(n);
  for (std::size_t w = 0; w < n; ++w) {
    const std::string ws = std::to_string(w);
    src[w] = ckt.node("src" + ws);
    drv[w] = ckt.node("drv" + ws);
    end[w] = ckt.node("end" + ws);
    if (initial[w] == target[w]) {
      ckt.add_vsource("V" + ws, src[w], ckt.ground(),
                      rlc::spice::DcSpec{target[w]});
    } else {
      ckt.add_vsource("V" + ws, src[w], ckt.ground(),
                      rlc::spice::PulseSpec{initial[w], target[w], 0.0, 1e-14,
                                            1e-14, 1.0, 0.0});
    }
    ckt.add_resistor("Rs" + ws, src[w], drv[w], dl.rs_eff);
    ckt.add_capacitor("Cp" + ws, drv[w], ckt.ground(), dl.cp_eff);
    ckt.add_capacitor("Cl" + ws, end[w], ckt.ground(), dl.cl_eff);
  }
  const std::vector<Ladder> bus =
      add_coupled_bus(ckt, "bus", drv, end, tech.line(l), coupling, h, nseg);

  rlc::spice::TransientOptions o;
  o.tstop = tstop;
  o.dt = tstop / steps;
  o.probes.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    o.probes.push_back(
        rlc::spice::Probe::node_voltage(end[w], "v" + std::to_string(w)));
    if (initial[w] != 0.0) {
      o.initial_voltages.emplace_back(src[w], initial[w]);
      o.initial_voltages.emplace_back(drv[w], initial[w]);
      o.initial_voltages.emplace_back(end[w], initial[w]);
      for (NodeId nd : bus[w].interior_nodes()) {
        o.initial_voltages.emplace_back(nd, initial[w]);
      }
    }
  }
  const auto tr = run_transient(ckt, o);
  CoupledStepResult out;
  if (!tr.completed) return out;
  out.completed = true;
  out.time = tr.time;
  out.far_end.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    out.far_end.push_back(tr.signal("v" + std::to_string(w)));
  }
  return out;
}

CrosstalkResult run_crosstalk(const rlc::core::Technology& tech,
                              const CouplingParams& coupling, double l,
                              double h, double k, int nseg) {
  CrosstalkResult res;
  const PairRun quiet =
      run_pair(tech, coupling, l, h, k, nseg, VictimDrive::kQuiet);
  const PairRun in_phase =
      run_pair(tech, coupling, l, h, k, nseg, VictimDrive::kInPhase);
  const PairRun anti =
      run_pair(tech, coupling, l, h, k, nseg, VictimDrive::kAntiPhase);
  if (quiet.delay < 0.0 || in_phase.delay < 0.0 || anti.delay < 0.0) {
    return res;
  }
  res.completed = true;
  res.victim_peak_noise = quiet.victim_peak;
  res.delay_quiet = quiet.delay;
  res.delay_inphase = in_phase.delay;
  res.delay_antiphase = anti.delay;
  return res;
}

}  // namespace rlc::ringosc
