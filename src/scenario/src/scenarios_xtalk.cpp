/// Coupled-line crosstalk scenarios on the ANALYTICAL path: the modal
/// engine (symmetric_bus -> modal_decomposition -> Euler-inverted scalar
/// transfers) produces every number, and the mini-SPICE coupled-ladder MNA
/// reference rides along as an in-table cross-check column.  The fourth
/// scenario exercises the noise-constrained (h, k) optimizer.
///
/// All four run at the paper's operating point — RC-optimal segmentation
/// and sizing on the quiet-neighbour effective line, l = 1 nH/mm — at both
/// technology nodes.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/ringosc/coupled_bus.hpp"
#include "rlc/scenario/registry.hpp"
#include "rlc/tline/coupled_line.hpp"

namespace rlc::scenario {

namespace {

using namespace rlc::core;

constexpr double kXtalkL = 1.0e-6;  ///< 1 nH/mm, the coupled test length

/// One coupled configuration: technology node + coupling strengths.
struct XtalkConfig {
  std::string tech_name;
  double ccf = 0.0;  ///< cc as a fraction of the self capacitance
  double km = 0.0;
};

/// Everything the analytical engine needs for one configuration.
struct XtalkPoint {
  Technology tech;
  tline::LineParams line;
  tline::CoupledLine bus;
  double cc = 0.0, km = 0.0;
  double h = 0.0, k = 0.0;
  double tau = 0.0;  ///< search/time scale (quiet-neighbour two-pole delay)
};

XtalkPoint make_point(const XtalkConfig& cfg) {
  XtalkPoint p{technology_by_name(cfg.tech_name),
               {},
               {},
               0.0,
               cfg.km,
               0.0,
               0.0,
               0.0};
  p.line = p.tech.line(kXtalkL);
  p.cc = cfg.ccf * p.line.c;
  p.bus = tline::symmetric_bus(p.line, p.cc, p.km, 2);
  const auto rc = rc_optimum(p.tech.rep, p.tech.r, p.tech.c);
  p.h = rc.h;
  p.k = rc.k;
  tline::LineParams eff = p.line;
  eff.c += 2.0 * p.cc;
  const auto d = segment_delay(p.tech.rep, eff, p.h, p.k);
  p.tau = d.converged ? d.tau : rc.tau;
  return p;
}

std::vector<XtalkConfig> xtalk_configs(bool quick) {
  if (quick) return {{"100nm", 0.3, 0.3}, {"250nm", 0.25, 0.0}};
  return {{"250nm", 0.25, 0.0},
          {"250nm", 0.3, 0.3},
          {"100nm", 0.25, 0.0},
          {"100nm", 0.3, 0.3}};
}

/// MNA resolution: the full grid reproduces the integration-test reference
/// (converged to ~1e-3); quick trades accuracy for CI wall time, and the
/// validator relaxes the rel-err bound accordingly.
void mna_resolution(bool quick, int* steps, int* nseg) {
  *steps = quick ? 1200 : 9000;
  *nseg = quick ? 16 : 96;
}

double interp(const std::vector<double>& ts, const std::vector<double>& vs,
              double t) {
  const auto it = std::lower_bound(ts.begin(), ts.end(), t);
  if (it == ts.begin()) return vs.front();
  if (it == ts.end()) return vs.back();
  const std::size_t i = static_cast<std::size_t>(it - ts.begin());
  const double w = (t - ts[i - 1]) / (ts[i] - ts[i - 1]);
  return vs[i - 1] + w * (vs[i] - vs[i - 1]);
}

/// Geometric probe grid over the response (0.3..8 tau), the same shape the
/// integration cross-check uses.
std::vector<double> probe_times(double tau) {
  std::vector<double> ts;
  for (double m = 0.3; m <= 8.0; m *= 1.25) ts.push_back(m * tau);
  return ts;
}

/// Max |analytic - MNA| over the probe grid for conductor `w` (the
/// excitation swing is 1 V, so this IS the relative error).
double waveform_rel_err(const XtalkPoint& p, const CoupledExcitation& exc,
                        std::size_t w, const ringosc::CoupledStepResult& mna,
                        const std::vector<double>& times) {
  const auto analytic = exact_coupled_step_response(
      p.bus, p.h, p.tech.rep.scaled(p.k), exc, times);
  double worst = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double ref = interp(mna.time, mna.far_end[w], times[i]);
    worst = std::max(worst, std::abs(analytic[w][i] - ref));
  }
  return worst;
}

/// Interpolated first crossing of `level` in an MNA far-end trace (rising);
/// negative when never crossed.
double mna_crossing(const ringosc::CoupledStepResult& mna, std::size_t w,
                    double level) {
  const auto& v = mna.far_end[w];
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] >= level && v[i - 1] < level) {
      const double frac = (level - v[i - 1]) / (v[i] - v[i - 1]);
      return mna.time[i - 1] + frac * (mna.time[i] - mna.time[i - 1]);
    }
  }
  return -1.0;
}

ringosc::CoupledStepResult run_mna(const XtalkPoint& p,
                                   const CoupledExcitation& exc, double tstop,
                                   bool quick) {
  int steps = 0, nseg = 0;
  mna_resolution(quick, &steps, &nseg);
  return ringosc::run_coupled_step(p.tech, {p.cc, p.km}, kXtalkL, p.h, p.k,
                                   exc.initial, exc.target, tstop, steps,
                                   nseg);
}

void fill_coupling(ScenarioResult& res, const std::vector<XtalkConfig>& cfgs,
                   double worst_peak, double worst_width) {
  res.coupling.n_conductors = 2;
  // Representative (strongest) coupling of the run.
  for (const auto& c : cfgs) {
    const auto tech = technology_by_name(c.tech_name);
    res.coupling.cc = std::max(res.coupling.cc, c.ccf * tech.line(kXtalkL).c);
    res.coupling.km = std::max(res.coupling.km, c.km);
  }
  res.coupling.peak_noise = worst_peak;
  res.coupling.noise_width = worst_width;
}

// ---------------------------------------------------------------------------
// xtalk_quiet: victim noise, analytical vs MNA.

ScenarioResult xtalk_quiet(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto cfgs = xtalk_configs(spec.quick);

  struct Row {
    CoupledNoiseResult noise;
    double mna_peak = 0.0, rel_err = 0.0;
    bool ok = false;
  };
  const auto rows =
      rlc::exec::parallel_map(ctx.pool_ref(), cfgs, [&](const XtalkConfig& c) {
        const rlc::exec::StopWatch sw;
        Row row;
        const XtalkPoint p = make_point(c);
        const CoupledExcitation exc{{0.0, 0.0}, {1.0, 0.0}};
        row.noise = exact_coupled_victim_noise(p.bus, p.h,
                                               p.tech.rep.scaled(p.k), exc,
                                               /*victim=*/1, p.tau);
        const auto mna = run_mna(p, exc, 10.0 * p.tau, spec.quick);
        if (mna.completed) {
          for (double v : mna.far_end[1]) {
            row.mna_peak = std::max(row.mna_peak, std::abs(v));
          }
          row.rel_err = waveform_rel_err(p, exc, 1, mna, probe_times(p.tau));
          row.ok = true;
        }
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return row;
      });

  Table t("Quiet-victim noise: modal engine vs coupled-ladder MNA "
          "(l = 1 nH/mm, RC-optimal h/k)",
          {"tech", "cc/c", "km", "peak (V)", "t_peak (ps)", "width (ps)",
           "MNA peak (V)", "wave rel err"});
  double worst_err = 0.0, worst_peak = 0.0, worst_width = 0.0;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const Row& row = rows[i];
    if (!row.ok) continue;
    t.row({cfgs[i].tech_name, cfgs[i].ccf, cfgs[i].km, row.noise.peak,
           row.noise.t_peak * 1e12, row.noise.width * 1e12, row.mna_peak,
           row.rel_err});
    worst_err = std::max(worst_err, row.rel_err);
    if (row.noise.peak > worst_peak) {
      worst_peak = row.noise.peak;
      worst_width = row.noise.width;
    }
  }
  res.tables.push_back(std::move(t));
  res.metric("max_wave_rel_err", worst_err);
  fill_coupling(res, cfgs, worst_peak, worst_width);
  res.note(
      "Expected shape: victim noise grows with cc/c; inductive coupling "
      "(km > 0) partially cancels the capacitive pulse.  The rel-err column "
      "is the max |analytic - MNA| over a geometric probe grid per unit "
      "swing; full runs must stay within 5e-3 (the converged-ladder "
      "agreement the integration tests pin).");
  return res;
}

// ---------------------------------------------------------------------------
// xtalk_inphase / xtalk_antiphase: switching-delay spread vs the quiet
// baseline (the Miller-range experiment on the analytical path).

struct DelayRow {
  double d_pattern = 0.0;  ///< aggressor 50% delay under the pattern [s]
  double d_quiet = 0.0;    ///< quiet-victim baseline [s]
  double mna_delay = 0.0;  ///< MNA crossing under the pattern [s]
  double rel_err = 0.0;    ///< waveform rel err of the aggressor trace
  bool ok = false;
};

DelayRow delay_row(const XtalkConfig& c, const CoupledExcitation& pattern,
                   bool quick) {
  DelayRow row;
  const XtalkPoint p = make_point(c);
  const auto dl = p.tech.rep.scaled(p.k);
  const auto d_pat =
      exact_coupled_threshold_delay(p.bus, p.h, dl, pattern, 0, p.tau, 0.5);
  const CoupledExcitation quiet{{0.0, 0.0}, {1.0, 0.0}};
  const auto d_q =
      exact_coupled_threshold_delay(p.bus, p.h, dl, quiet, 0, p.tau, 0.5);
  if (!d_pat || !d_q) return row;
  row.d_pattern = *d_pat;
  row.d_quiet = *d_q;
  const auto mna = run_mna(p, pattern, 12.0 * p.tau, quick);
  if (!mna.completed) return row;
  row.mna_delay = mna_crossing(mna, 0, 0.5);
  row.rel_err = waveform_rel_err(p, pattern, 0, mna, probe_times(p.tau));
  row.ok = row.mna_delay > 0.0;
  return row;
}

ScenarioResult xtalk_switching(const ScenarioSpec& spec, ScenarioContext& ctx,
                               bool antiphase) {
  ScenarioResult res;
  const auto cfgs = xtalk_configs(spec.quick);
  const CoupledExcitation pattern =
      antiphase ? CoupledExcitation{{0.0, 1.0}, {1.0, 0.0}}
                : CoupledExcitation{{0.0, 0.0}, {1.0, 1.0}};

  const auto rows =
      rlc::exec::parallel_map(ctx.pool_ref(), cfgs, [&](const XtalkConfig& c) {
        const rlc::exec::StopWatch sw;
        DelayRow row = delay_row(c, pattern, spec.quick);
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return row;
      });

  const char* dcol = antiphase ? "d_anti (ps)" : "d_inphase (ps)";
  Table t(std::string(antiphase ? "Anti-phase" : "In-phase") +
              " switching delay vs quiet baseline (l = 1 nH/mm)",
          {"tech", "cc/c", "km", dcol, "d_quiet (ps)", "MNA d (ps)",
           "wave rel err"});
  double worst_err = 0.0;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const DelayRow& row = rows[i];
    if (!row.ok) continue;
    t.row({cfgs[i].tech_name, cfgs[i].ccf, cfgs[i].km, row.d_pattern * 1e12,
           row.d_quiet * 1e12, row.mna_delay * 1e12, row.rel_err});
    worst_err = std::max(worst_err, row.rel_err);
  }
  res.tables.push_back(std::move(t));
  res.metric("max_wave_rel_err", worst_err);
  fill_coupling(res, cfgs, 0.0, 0.0);
  res.note(antiphase
               ? "Expected shape (km = 0 rows): anti-phase switching sees the "
                 "full Miller-doubled coupling capacitance, so d_quiet <= "
                 "d_anti.  Inductive coupling (km > 0) acts oppositely "
                 "(anti-phase loops see L(1-km)) and can reverse the order."
               : "Expected shape (km = 0 rows): in-phase neighbours cancel "
                 "the coupling capacitance, so d_inphase <= d_quiet.  "
                 "km > 0 rows: in-phase loops see L(1+km), which erodes or "
                 "reverses the speedup.");
  return res;
}

ScenarioResult xtalk_inphase(const ScenarioSpec& spec, ScenarioContext& ctx) {
  return xtalk_switching(spec, ctx, /*antiphase=*/false);
}

ScenarioResult xtalk_antiphase(const ScenarioSpec& spec,
                               ScenarioContext& ctx) {
  return xtalk_switching(spec, ctx, /*antiphase=*/true);
}

// ---------------------------------------------------------------------------
// xtalk_noise_opt: the noise-constrained optimizer at both nodes.

ScenarioResult xtalk_noise_opt(const ScenarioSpec& spec,
                               ScenarioContext& ctx) {
  ScenarioResult res;
  struct OptCase {
    std::string tech_name;
    double vmax = 0.0;
  };
  std::vector<OptCase> cases;
  const std::vector<std::string> techs =
      spec.quick ? std::vector<std::string>{"250nm"}
                 : std::vector<std::string>{"250nm", "100nm"};
  for (const auto& tn : techs) {
    cases.push_back({tn, 0.9});   // generous budget: constraint inactive
    cases.push_back({tn, 0.10});  // tight budget: constraint active
  }

  struct Row {
    NoiseOptimResult r;
    bool ok = false;
  };
  const auto rows =
      rlc::exec::parallel_map(ctx.pool_ref(), cases, [&](const OptCase& oc) {
        const rlc::exec::StopWatch sw;
        Row row;
        const auto tech = technology_by_name(oc.tech_name);
        NoiseConstraintOptions c;
        c.cc = 0.3 * tech.line(kXtalkL).c;
        c.km = 0.3;
        c.conductors = 2;
        c.vmax = oc.vmax;
        c.optim = spec.optim_options();
        row.r = optimize_rlc_noise_constrained(tech, kXtalkL, c);
        row.ok = row.r.converged;
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return row;
      });

  Table t("Noise-constrained (h, k): delay cost of a crosstalk budget "
          "(cc/c = 0.3, km = 0.3, l = 1 nH/mm)",
          {"tech", "vmax (V)", "h (mm)", "k", "delay/len (ps/mm)",
           "peak noise (V)", "active"});
  double worst_peak = 0.0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Row& row = rows[i];
    if (!row.ok) continue;
    t.row({cases[i].tech_name, cases[i].vmax, row.r.sizing.h * 1e3,
           row.r.sizing.k, row.r.sizing.delay_per_length * 1e9,
           row.r.peak_noise, row.r.constraint_active ? 1 : 0});
    worst_peak = std::max(worst_peak, row.r.peak_noise);
  }
  res.tables.push_back(std::move(t));
  // Delay cost of the active budget per technology (the headline number).
  for (const auto& tn : techs) {
    double free_dpl = 0.0, tight_dpl = 0.0;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (cases[i].tech_name != tn || !rows[i].ok) continue;
      (cases[i].vmax > 0.5 ? free_dpl : tight_dpl) =
          rows[i].r.sizing.delay_per_length;
    }
    if (free_dpl > 0.0 && tight_dpl > 0.0) {
      res.metric("noise_penalty_pct_" + tn,
                 100.0 * (tight_dpl / free_dpl - 1.0));
    }
  }
  res.coupling.n_conductors = 2;
  res.coupling.km = 0.3;
  for (const auto& tn : techs) {
    res.coupling.cc = std::max(
        res.coupling.cc, 0.3 * technology_by_name(tn).line(kXtalkL).c);
  }
  res.coupling.peak_noise = worst_peak;
  res.note(
      "Every row satisfies peak_noise <= vmax.  The inactive-budget rows "
      "are bitwise the unconstrained optimum on the quiet-neighbour "
      "effective line; the active rows buy the budget by upsizing the "
      "repeaters (larger k, slightly longer h) at the delay cost the "
      "noise_penalty_pct metrics record.");
  return res;
}

}  // namespace

void register_xtalk_scenarios(ScenarioRegistry& r) {
  r.add({"xtalk_quiet",
         "Quiet-victim crosstalk noise: modal engine vs coupled-ladder MNA",
         "extension", {}, xtalk_quiet, "noise"});
  r.add({"xtalk_inphase",
         "In-phase switching delay vs quiet baseline (analytical, MNA check)",
         "extension", {}, xtalk_inphase, "noise"});
  r.add({"xtalk_antiphase",
         "Anti-phase switching delay vs quiet baseline (analytical, MNA "
         "check)",
         "extension", {}, xtalk_antiphase, "noise"});
  r.add({"xtalk_noise_opt",
         "Noise-constrained (h, k) optimization: delay cost of a noise "
         "budget",
         "extension", {}, xtalk_noise_opt, "noise"});
}

}  // namespace rlc::scenario
