/// Ring-oscillator scenarios (Section 3.3): Figures 9-10 waveforms, the
/// Figure 11 period-vs-inductance study with its buffered-line control, and
/// the Figure 12 current-density reliability check.  These are the
/// transient-simulation-heavy scenarios, so quick mode trims the l-lists
/// and ladder sizes to keep CI smoke runs in seconds.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "rlc/core/elmore.hpp"
#include "rlc/ringosc/ring.hpp"
#include "rlc/scenario/registry.hpp"

namespace rlc::scenario {

namespace {

using rlc::core::Technology;
using namespace rlc::ringosc;

RingParams ring_params(const ScenarioSpec& spec, double l, double h,
                       double k) {
  RingParams p;
  p.stages = spec.ring_stages;
  p.segments_per_line = spec.segments_per_line;
  p.l = l;
  p.h = h;
  p.k = k;
  return p;
}

ScenarioResult fig9_10(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto tech = Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);
  const std::vector<double> lvals =
      spec.sweep.explicit_l.empty() ? std::vector<double>{1.8e-6, 2.2e-6}
                                    : spec.sweep.explicit_l;

  // The two ring transients are independent: fan them over the pool.
  const auto results =
      rlc::exec::parallel_map(ctx.pool_ref(), lvals, [&](double l) {
        const rlc::exec::StopWatch sw;
        auto r = simulate_ring(tech, ring_params(spec, l, rc.h, rc.k));
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return r;
      });

  std::vector<double> periods;
  for (std::size_t which = 0; which < lvals.size(); ++which) {
    const auto& r = results[which];
    if (!r.completed) {
      throw std::runtime_error("fig9_10: ring simulation failed for l = " +
                               std::to_string(to_nH_per_mm(lvals[which])) +
                               " nH/mm");
    }
    const double period = r.period.value_or(0.0);
    periods.push_back(period);

    char title[96];
    std::snprintf(title, sizeof title,
                  "Inverter waveforms, l = %.1f nH/mm (Figure %s)",
                  to_nH_per_mm(lvals[which]), which == 0 ? "9" : "10");
    Table t(title, {"t (ns)", "v_in (V)", "v_out (V)"});
    // One settled period and a half, 40 samples.
    const double t0 = r.time.front();
    const double span = 1.5 * (period > 0 ? period : r.t_estimate);
    std::size_t idx = 0;
    const int samples = spec.quick ? 20 : 40;
    for (int s = 0; s <= samples; ++s) {
      const double ts = t0 + span * s / samples;
      while (idx + 1 < r.time.size() && r.time[idx] < ts) ++idx;
      t.row({(r.time[idx] - t0) * 1e9, r.v_in[idx], r.v_out[idx]});
    }
    res.tables.push_back(std::move(t));

    const std::string suffix = std::to_string(which);
    res.metric("period_ns_" + suffix, period * 1e9);
    res.metric("input_overshoot_V_" + suffix, r.input_excursion.overshoot);
    res.metric("input_undershoot_V_" + suffix, r.input_excursion.undershoot);
  }
  if (periods.size() >= 2 && periods[0] > 0.0) {
    res.metric("period_ratio", periods[1] / periods[0]);
  }
  res.metric("vdd", tech.vdd);
  res.note(
      "(paper: the 2.2 nH/mm period is LESS THAN HALF the 1.8 nH/mm period — "
      "onset of false switching; expect period_ratio < 0.5)");
  return res;
}

ScenarioResult fig11(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  struct Series {
    Technology tech;
    std::vector<double> ls;
  };
  Series series[] = {
      {Technology::nm100(), spec.sweep.explicit_l},
      {Technology::nm250(), {0.2e-6, 1.0e-6, 2.0e-6, 3.5e-6, 5.0e-6}},
  };
  if (series[0].ls.empty()) {
    series[0].ls = {0.2e-6, 0.8e-6, 1.4e-6, 1.8e-6, 2.0e-6,
                    2.2e-6, 2.6e-6, 3.5e-6, 5.0e-6};
  }
  if (spec.quick) {
    // Keep the collapse bracket (1.8 -> 2.2 nH/mm) and the endpoints.
    series[0].ls = {0.2e-6, 1.8e-6, 2.2e-6, 5.0e-6};
    series[1].ls = {0.2e-6, 5.0e-6};
  }

  for (auto& s : series) {
    const auto rc = rlc::core::rc_optimum(s.tech);
    // Each inductance point is an independent ring transient: fan them out
    // over the pool, then tabulate in grid order.
    const auto results =
        rlc::exec::parallel_map(ctx.pool_ref(), s.ls, [&](double l) {
          const rlc::exec::StopWatch sw;
          auto r = simulate_ring(s.tech, ring_params(spec, l, rc.h, rc.k));
          if (ctx.counters) ctx.counters->record_wall(sw.seconds());
          return r;
        });

    char title[96];
    std::snprintf(title, sizeof title,
                  "%s ring period vs l (h = h_optRC = %.2f mm, k = %.0f)",
                  s.tech.name.c_str(), rc.h * 1e3, rc.k);
    Table t(title, {"l (nH/mm)", "period (ns)", "in overshoot (V)",
                    "in undershoot (V)", "collapse"});
    double prev_period = -1.0;
    for (std::size_t i = 0; i < s.ls.size(); ++i) {
      const auto& r = results[i];
      const double period = r.completed ? r.period.value_or(-1.0) : -1.0;
      const bool collapse =
          prev_period > 0.0 && period > 0.0 && period < 0.6 * prev_period;
      t.row({to_nH_per_mm(s.ls[i]), period * 1e9,
             r.input_excursion.overshoot, r.input_excursion.undershoot,
             collapse ? "COLLAPSE" : ""});
      if (collapse) {
        res.metric("collapse_onset_" + s.tech.name + "_nH_per_mm",
                   to_nH_per_mm(s.ls[i]));
      }
      prev_period = period;
    }
    res.tables.push_back(std::move(t));
  }

  if (!spec.quick) {
    // Control: square-wave-driven 5-stage buffered line past the collapse —
    // shows the false switching is not a ring artifact.
    const auto tech = Technology::nm100();
    const auto rc = rlc::core::rc_optimum(tech);
    const auto p = ring_params(spec, 2.6e-6, rc.h, rc.k);
    const double drive = 30.0 * rc.tau;
    const rlc::exec::StopWatch sw;
    const auto r = simulate_buffered_line(tech, p, drive, 5);
    if (ctx.counters) ctx.counters->record_wall(sw.seconds());
    res.metric("buffered_line_transition_ratio", r.transition_ratio);
    res.note(
        "Control: square-wave-driven 5-stage buffered line, 100 nm, l = 2.6 "
        "nH/mm; output transitions per drive transition > 1 means false "
        "switching, matching the ring.");
  }
  res.note(
      "(paper: sharp period drop near l ~ 2 nH/mm at 100 nm only; the same "
      "false switching appears on the non-ring buffered line)");
  return res;
}

ScenarioResult fig12(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto tech = Technology::nm100();
  const auto rc = rlc::core::rc_optimum(tech);
  std::vector<double> ls = spec.sweep.explicit_l;
  if (ls.empty()) {
    ls = {0.2e-6, 0.8e-6, 1.4e-6, 1.8e-6, 2.6e-6, 3.5e-6, 5.0e-6};
  }
  if (spec.quick) ls = {0.2e-6, 1.8e-6};

  const auto results =
      rlc::exec::parallel_map(ctx.pool_ref(), ls, [&](double l) {
        const rlc::exec::StopWatch sw;
        auto r = simulate_ring(tech, ring_params(spec, l, rc.h, rc.k));
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return r;
      });

  Table t("Peak and rms wire current density vs line inductance (100 nm)",
          {"l (nH/mm)", "J_peak (A/m^2)", "J_rms (A/m^2)", "EM flag",
           "heat flag"});
  double jpk_min = 1e300, jpk_max = 0.0, jrms_min = 1e300, jrms_max = 0.0;
  for (std::size_t i = 0; i < ls.size(); ++i) {
    const auto& r = results[i];
    if (!r.completed) continue;
    t.row({to_nH_per_mm(ls[i]), r.wire_density.j_peak, r.wire_density.j_rms,
           r.wire_density.em_concern ? "YES" : "no",
           r.wire_density.joule_concern ? "YES" : "no"});
    // Track the spread in the functional (pre-false-switching) regime that
    // the paper's flatness claim refers to.
    if (ls[i] <= 1.8e-6) {
      jpk_min = std::min(jpk_min, r.wire_density.j_peak);
      jpk_max = std::max(jpk_max, r.wire_density.j_peak);
      jrms_min = std::min(jrms_min, r.wire_density.j_rms);
      jrms_max = std::max(jrms_max, r.wire_density.j_rms);
    }
  }
  res.tables.push_back(std::move(t));
  res.metric("wire_width_um", tech.width * 1e6);
  res.metric("wire_thickness_um", tech.thickness * 1e6);
  res.metric("j_peak_spread_functional", jpk_max / jpk_min);
  res.metric("j_rms_spread_functional", jrms_max / jrms_min);
  res.note(
      "(paper: both densities do not change appreciably with l => "
      "interconnect reliability is not degraded by inductance variation. "
      "Past the false-switching onset the ring toggles ~2-3x faster and the "
      "rms density steps up with it — a symptom of the Figure 11 failure, "
      "not an inductance-driven reliability mechanism.)");
  return res;
}

}  // namespace

void register_ring_scenarios(ScenarioRegistry& r) {
  ScenarioSpec wave_defaults;
  wave_defaults.segments_per_line = 16;
  wave_defaults.sweep.explicit_l = {1.8e-6, 2.2e-6};
  r.add({"fig9_10",
         "Ring-oscillator inverter input/output waveforms, 100 nm node",
         "figure", wave_defaults, fig9_10});

  ScenarioSpec period_defaults;
  period_defaults.sweep.explicit_l = {0.2e-6, 0.8e-6, 1.4e-6, 1.8e-6, 2.0e-6,
                                      2.2e-6, 2.6e-6, 3.5e-6, 5.0e-6};
  r.add({"fig11", "Ring-oscillator period vs line inductance", "figure",
         period_defaults, fig11});

  ScenarioSpec density_defaults;
  density_defaults.sweep.explicit_l = {0.2e-6, 0.8e-6, 1.4e-6, 1.8e-6,
                                       2.6e-6, 3.5e-6, 5.0e-6};
  r.add({"fig12",
         "Peak and rms wire current density vs line inductance (100 nm)",
         "figure", density_defaults, fig12});
}

}  // namespace rlc::scenario
