#include "rlc/scenario/result.hpp"

#include "rlc/base/simd.hpp"
#include "rlc/base/version.hpp"
#include "rlc/obs/exporter.hpp"

#include <cstdio>
#include <stdexcept>

namespace rlc::scenario {

Table& Table::row(std::vector<Value> cells) {
  if (cells.size() != columns.size()) {
    throw std::invalid_argument(
        "rlc::scenario: table \"" + title + "\" expects " +
        std::to_string(columns.size()) + " cells per row, got " +
        std::to_string(cells.size()));
  }
  rows.push_back(std::move(cells));
  return *this;
}

io::Json Table::to_json() const {
  io::JsonArray cols;
  for (const auto& c : columns) cols.push(c);
  io::JsonArray rows_j;
  for (const auto& r : rows) {
    io::JsonArray row_j;
    for (const auto& cell : r) {
      if (cell.kind == Value::kText) {
        row_j.push(cell.text);
      } else {
        row_j.push(cell.number);
      }
    }
    rows_j.push(row_j);
  }
  io::Json j;
  j.set("title", title);
  j.set("columns", cols);
  j.set("rows", rows_j);
  return j;
}

io::Json Observability::to_json() const {
  io::Json spans_j;
  for (const auto& s : spans) {
    io::Json sj;
    sj.set("count", static_cast<long long>(s.count));
    sj.set("total_ns", static_cast<long long>(s.total_ns));
    sj.set("top_level_ns", static_cast<long long>(s.top_level_ns));
    spans_j.set(s.name, sj);
  }
  io::Json j;
  j.set("tracing", tracing);
  j.set("dropped_spans", static_cast<long long>(dropped_spans));
  j.set("metrics", metrics.to_json());
  j.set("spans", spans_j);
  return j;
}

io::Json CouplingInfo::to_json() const {
  io::Json j;
  j.set("n_conductors", n_conductors);
  j.set("cc", cc);
  j.set("km", km);
  j.set("peak_noise", peak_noise);
  j.set("noise_width", noise_width);
  return j;
}

io::Json ScenarioResult::to_json() const {
  io::Json j;
  j.set("schema", kSchemaVersion);
  j.set("version", rlc::version());
  j.set("bench", name);
  j.set("title", title);
  j.set("quick", spec.quick);
  j.set("threads", threads);
  j.set("simd", rlc::simd::active_level_name());
  j.set("wall_seconds", wall_seconds);
  j.set("spec", spec.to_json());

  io::Json counters_j;
  counters_j.set("tasks", static_cast<long long>(counters.tasks));
  counters_j.set("newton_iterations",
                 static_cast<long long>(counters.newton_iterations));
  counters_j.set("fallbacks", static_cast<long long>(counters.fallbacks));
  counters_j.set("failures", static_cast<long long>(counters.failures));
  counters_j.set("wall_total_s", counters.wall_total_s);
  counters_j.set("wall_min_s", counters.wall_min_s);
  counters_j.set("wall_max_s", counters.wall_max_s);
  j.set("counters", counters_j);

  j.set("observability", observability.to_json());

  // schema 7: what this run's metrics delta costs to scrape.  Series is
  // the number of sample lines (non-comment, non-empty) a Prometheus
  // endpoint would expose for exactly these metrics.
  {
    const std::string prom = obs::Exporter::prometheus(observability.metrics);
    long long series = 0;
    std::size_t at = 0;
    while (at < prom.size()) {
      const std::size_t nl = prom.find('\n', at);
      const std::size_t end = nl == std::string::npos ? prom.size() : nl;
      if (end > at && prom[at] != '#') ++series;
      if (nl == std::string::npos) break;
      at = nl + 1;
    }
    io::Json tel;
    tel.set("prometheus_series", series);
    tel.set("prometheus_bytes", static_cast<long long>(prom.size()));
    tel.set("trace_ring_capacity",
            static_cast<long long>(obs::Tracer::global().ring_capacity()));
    tel.set("dropped_spans",
            static_cast<long long>(observability.dropped_spans));
    j.set("telemetry", tel);
  }

  if (coupling.n_conductors > 0) j.set("coupling", coupling.to_json());

  io::JsonArray tables_j;
  for (const auto& t : tables) tables_j.push(t.to_json());
  j.set("tables", tables_j);

  io::Json metrics_j;
  for (const auto& m : metrics) metrics_j.set(m.name, m.value);
  j.set("metrics", metrics_j);

  io::JsonArray notes_j;
  for (const auto& n : notes) notes_j.push(n);
  j.set("notes", notes_j);

  if (!error.empty()) j.set("error", error);
  return j;
}

std::string ScenarioResult::numeric_fingerprint() const {
  std::string out;
  char buf[40];
  const auto add = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g;", v);
    out += buf;
  };
  for (const auto& t : tables) {
    out += t.title;
    out += '|';
    for (const auto& r : t.rows) {
      for (const auto& cell : r) {
        if (cell.kind == Value::kText) {
          out += cell.text;
          out += ';';
        } else {
          add(cell.number);
        }
      }
    }
  }
  for (const auto& m : metrics) {
    out += m.name;
    out += '=';
    add(m.value);
  }
  return out;
}

}  // namespace rlc::scenario
