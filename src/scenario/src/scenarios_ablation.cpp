/// Ablation scenarios (DESIGN.md): the Pade-order accuracy study, the
/// pi-ladder discretization study, and the prior-art baselines the paper
/// argues against.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "rlc/core/baselines.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/scenario/registry.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::scenario {

namespace {

using namespace rlc::core;

ScenarioResult ablation_pade(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  std::vector<double> ls = spec.sweep.explicit_l;
  if (ls.empty()) ls = {0.0, 0.5e-6, 1e-6, 2e-6, 3e-6, 4e-6, 5e-6};
  if (spec.quick) ls = {0.0, 2e-6, 5e-6};

  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto rc = rc_optimum(tech);
    ExactSweepOptions sweep;
    sweep.exact = spec.exact_options();
    sweep.f = spec.threshold;
    sweep.parallel = spec.parallel;
    sweep.pool = ctx.pool;
    sweep.counters = ctx.counters;
    const auto exact = exact_sweep(tech, ls, rc.h, rc.k, sweep);

    Table t(tech.name + ": two-pole 50%-delay error vs exact Eq. (1)",
            {"l (nH/mm)", "exact tau (ps)", "2-pole tau (ps)", "error (%)"});
    double worst = 0.0;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      const auto dr = segment_delay(tech.rep, tech.line(ls[i]), rc.h, rc.k,
                                    DelayOptions{spec.threshold});
      const double ex = exact[i].value();
      const double err = 100.0 * (dr.tau - ex) / ex;
      worst = std::max(worst, std::abs(err));
      t.row({to_nH_per_mm(ls[i]), ex * 1e12, dr.tau * 1e12, err});
    }
    res.tables.push_back(std::move(t));
    res.metric("max_abs_err_pct_" + tech.name, worst);
  }
  res.note(
      "The two-pole model tracks the exact response to a few percent at low "
      "l and ~10-14% at the top of the sweep (the cost of the paper's "
      "approximation 1); the optimizer's *relative* comparisons (Figs 5-8) "
      "are much less sensitive since both sides share the model.");
  return res;
}

/// 50% delay of a pulse-driven driver-ladder-load segment, from the
/// transient solver (the "SPICE measurement" of the discretization study).
double spice_delay(const Technology& tech, double l, double h, double k,
                   int nseg, double tau_scale) {
  const auto dl = tech.rep.scaled(k);
  rlc::spice::Circuit ckt;
  const auto src = ckt.node("src"), drv = ckt.node("drv"),
             end = ckt.node("end");
  ckt.add_vsource("V1", src, ckt.ground(),
                  rlc::spice::PulseSpec{0, 1, 0, 1e-14, 1e-14, 1, 0});
  ckt.add_resistor("Rs", src, drv, dl.rs_eff);
  ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
  rlc::ringosc::add_rlc_ladder(ckt, "ln", drv, end, tech.line(l), h, nseg);
  ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);
  rlc::spice::TransientOptions o;
  o.tstop = 8.0 * tau_scale;
  o.dt = tau_scale / 500.0;
  o.probes = {rlc::spice::Probe::node_voltage(end, "v")};
  const auto r = run_transient(ckt, o);
  const auto& v = r.signal("v");
  for (std::size_t i = 1; i < r.time.size(); ++i) {
    if (v[i - 1] < 0.5 && v[i] >= 0.5) {
      const double f = (0.5 - v[i - 1]) / (v[i] - v[i - 1]);
      return r.time[i - 1] + f * (r.time[i] - r.time[i - 1]);
    }
  }
  return -1.0;
}

ScenarioResult ablation_ladder(const ScenarioSpec& spec,
                               ScenarioContext& ctx) {
  ScenarioResult res;
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);
  std::vector<double> ls = spec.sweep.explicit_l;
  if (ls.empty()) ls = {1e-6, 3e-6};
  std::vector<int> nsegs{2, 4, 8, 16, 32, 64};
  if (spec.quick) nsegs = {2, 8, 16};

  // Exact references for all inductances from one engine sweep.
  ExactSweepOptions esw;
  esw.exact = spec.exact_options();
  esw.f = spec.threshold;
  esw.parallel = spec.parallel;
  esw.pool = ctx.pool;
  esw.counters = ctx.counters;
  const auto exact = exact_sweep(tech, ls, rc.h, rc.k, esw);

  for (std::size_t li = 0; li < ls.size(); ++li) {
    const double l = ls[li];
    const auto est = segment_delay(tech.rep, tech.line(l), rc.h, rc.k,
                                   DelayOptions{spec.threshold});
    const double ex = exact[li].value();

    // The per-nseg transients are independent: fan them over the pool.
    const auto sims =
        rlc::exec::parallel_map(ctx.pool_ref(), nsegs, [&](int nseg) {
          const rlc::exec::StopWatch sw;
          const double sim = spice_delay(tech, l, rc.h, rc.k, nseg, est.tau);
          if (ctx.counters) ctx.counters->record_wall(sw.seconds());
          return sim;
        });

    char title[96];
    std::snprintf(title, sizeof title,
                  "100nm, l = %.1f nH/mm, exact tau = %.2f ps",
                  to_nH_per_mm(l), ex * 1e12);
    Table t(title, {"nseg", "ladder tau (ps)", "error (%)"});
    for (std::size_t si = 0; si < nsegs.size(); ++si) {
      t.row({nsegs[si], sims[si] * 1e12, 100.0 * (sims[si] - ex) / ex});
      if (nsegs[si] == 16) {
        res.metric("err_16seg_pct_l" + std::to_string(li),
                   100.0 * (sims[si] - ex) / ex);
      }
    }
    res.tables.push_back(std::move(t));
  }
  res.note(
      "The ring-oscillator experiments use 12-16 segments per line, where "
      "the discretization error is at the percent level.");
  return res;
}

ScenarioResult ablation_baselines(const ScenarioSpec& spec,
                                  ScenarioContext&) {
  ScenarioResult res;
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);

  Table km("(a) 50% delay at (h_optRC, k_optRC) vs inductance",
           {"l (nH/mm)", "exact Eq.(3) (ps)", "Kahng-Muddu crit. (ps)"});
  double km_min = 1e300, km_max = 0.0;
  for (double l : {0.0, 0.5e-6, 1e-6, 2e-6, 3e-6, 5e-6}) {
    const auto pc = pade_coeffs_hk(tech.rep, tech.line(l), rc.h, rc.k);
    const auto exact = threshold_delay(TwoPole(pc));
    const double kmd = critically_damped_delay(pc);
    km_min = std::min(km_min, kmd);
    km_max = std::max(km_max, kmd);
    km.row({to_nH_per_mm(l), exact.tau * 1e12, kmd * 1e12});
  }
  res.tables.push_back(std::move(km));
  res.metric("km_delay_spread_ps", (km_max - km_min) * 1e12);
  res.note(
      "The critically-damped approximation is EXACTLY constant in l (b1 has "
      "no inductance term) — unusable for inductance-aware optimization, as "
      "Section 2.1 argues.");

  const auto t250 = Technology::nm250();
  std::vector<double> train;
  for (int i = 1; i <= 10; ++i) train.push_back(i * 0.5e-6);
  const auto fitb = CurveFitBaseline::fit(t250, train);
  res.metric("fit_a_h", fitb.a_h());
  res.metric("fit_b_h", fitb.b_h());
  res.metric("fit_a_k", fitb.a_k());
  res.metric("fit_b_k", fitb.b_k());

  Table fit("(b) Curve-fitted sizing (trained on 250nm, l in [0.5, 5] nH/mm)",
            {"tech", "l (nH/mm)", "h err (%)", "k err (%)",
             "delay penalty (%)"});
  for (const auto& t : {Technology::nm250(), Technology::nm100()}) {
    OptimOptions opts = spec.optim_options();
    for (double l : {0.0, 1e-6, 3e-6, 5e-6}) {
      const auto exact = optimize_rlc(t, l, opts);
      if (!exact.converged) continue;
      opts.h0 = exact.h;
      opts.k0 = exact.k;
      const double hf = fitb.h_opt(t, l);
      const double kf = fitb.k_opt(t, l);
      double penalty = 0.0;
      try {
        penalty = delay_per_length(t.rep, t.line(l), hf, kf) /
                      exact.delay_per_length -
                  1.0;
      } catch (const std::exception&) {
        penalty = -1.0;
      }
      fit.row({t.name, to_nH_per_mm(l), 100.0 * (hf / exact.h - 1.0),
               100.0 * (kf / exact.k - 1.0), 100.0 * penalty});
    }
  }
  res.tables.push_back(std::move(fit));
  res.note(
      "In-range on the trained technology the fit is decent; at l = 0 it "
      "misses the Pade effect entirely (h error ~ +5%), and transferring to "
      "the other node grows the errors — the validity-range limitation the "
      "paper's analytic approach does not have.");
  return res;
}

}  // namespace

void register_ablation_scenarios(ScenarioRegistry& r) {
  ScenarioSpec pade_defaults;
  pade_defaults.sweep.explicit_l = {0.0, 0.5e-6, 1e-6, 2e-6, 3e-6, 4e-6,
                                    5e-6};
  r.add({"ablation_pade",
         "Two-pole (Eq. 2) 50%-delay error vs exact Eq. (1), at (h_optRC, "
         "k_optRC)",
         "ablation", pade_defaults, ablation_pade});

  ScenarioSpec ladder_defaults;
  ladder_defaults.sweep.explicit_l = {1e-6, 3e-6};
  r.add({"ablation_ladder",
         "Pi-ladder discretization error vs exact distributed line",
         "ablation", ladder_defaults, ablation_ladder});

  r.add({"ablation_baselines",
         "Kahng-Muddu delay approximation and curve-fitted sizing vs this "
         "work",
         "ablation", {}, ablation_baselines});
}

}  // namespace rlc::scenario
