/// Extension scenarios beyond the paper's figures: coupled-line crosstalk,
/// the segment frequency response at three model levels, the continuous
/// technology-scaling trend, and the skin-effect adequacy check.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/core/two_pole.hpp"
#include "rlc/laplace/talbot.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/ringosc/coupled_bus.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/scenario/registry.hpp"
#include "rlc/spice/ac.hpp"
#include "rlc/tline/coupled_line.hpp"
#include "rlc/tline/transfer.hpp"

namespace rlc::scenario {

namespace {

using namespace rlc::core;

ScenarioResult ext_crosstalk(const ScenarioSpec& spec, ScenarioContext& ctx) {
  // The ANALYTICAL coupled path (symmetric_bus -> modal decomposition ->
  // Euler-inverted scalar transfers) produces every delay/noise number;
  // a coupled-ladder MNA transient of the quiet-victim pattern rides along
  // per row as a cross-check column.  The xtalk_* scenarios pin the strict
  // converged-ladder agreement; here the ladder uses the spec's segment
  // count, so the rel-err column mostly measures ladder discretization.
  ScenarioResult res;
  const auto tech = Technology::nm100();
  const double l = 1.0e-6;
  const auto line = tech.line(l);
  const auto rc = rc_optimum(tech);
  const double h = 0.5 * rc.h, k = 0.5 * rc.k;
  const auto dl = tech.rep.scaled(k);

  struct Config {
    double ccf = 0.0;
    double km = 0.0;
  };
  std::vector<Config> configs;
  const std::vector<double> ccfs =
      spec.quick ? std::vector<double>{0.2, 0.4}
                 : std::vector<double>{0.1, 0.2, 0.3, 0.4};
  for (double ccf : ccfs) {
    for (double km : {0.0, 0.3}) configs.push_back({ccf, km});
  }

  struct Row {
    double d_in = 0.0, d_quiet = 0.0, d_anti = 0.0;
    rlc::core::CoupledNoiseResult noise;
    double mna_noise = 0.0, rel_err = 0.0;
    bool ok = false;
  };
  // Each (cc, km) configuration is independent: three analytical threshold
  // solves, one noise query and one MNA transient.
  const auto rows =
      rlc::exec::parallel_map(ctx.pool_ref(), configs, [&](const Config& c) {
        const rlc::exec::StopWatch sw;
        Row row;
        const double cc = c.ccf * line.c;
        const auto bus = rlc::tline::symmetric_bus(line, cc, c.km, 2);
        rlc::tline::LineParams eff = line;
        eff.c += 2.0 * cc;
        const auto d = segment_delay(tech.rep, eff, h, k);
        const double tau = d.converged ? d.tau : rc.tau;

        const CoupledExcitation quiet{{0.0, 0.0}, {1.0, 0.0}};
        const CoupledExcitation inphase{{0.0, 0.0}, {1.0, 1.0}};
        const CoupledExcitation anti{{0.0, 1.0}, {1.0, 0.0}};
        const auto dq =
            exact_coupled_threshold_delay(bus, h, dl, quiet, 0, tau, 0.5);
        const auto di =
            exact_coupled_threshold_delay(bus, h, dl, inphase, 0, tau, 0.5);
        const auto da =
            exact_coupled_threshold_delay(bus, h, dl, anti, 0, tau, 0.5);
        row.noise = exact_coupled_victim_noise(bus, h, dl, quiet, 1, tau);

        const auto mna = rlc::ringosc::run_coupled_step(
            tech, {cc, c.km}, l, h, k, quiet.initial, quiet.target,
            12.0 * tau, spec.quick ? 800 : 2400, spec.segments_per_line);
        if (dq && di && da && mna.completed) {
          row.d_quiet = *dq;
          row.d_in = *di;
          row.d_anti = *da;
          for (double v : mna.far_end[1]) {
            row.mna_noise = std::max(row.mna_noise, std::abs(v));
          }
          row.rel_err = std::abs(row.noise.peak - row.mna_noise);
          row.ok = true;
        }
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return row;
      });

  Table t("Coupled-line delay spread and victim noise (100 nm, l = 1 nH/mm, "
          "analytical path)",
          {"cc/c", "km", "d_inphase (ps)", "d_quiet (ps)", "d_anti (ps)",
           "victim noise (V)", "MNA noise (V)", "noise abs err"});
  double worst_peak = 0.0, worst_width = 0.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Row& r = rows[i];
    if (!r.ok) continue;
    t.row({configs[i].ccf, configs[i].km, r.d_in * 1e12, r.d_quiet * 1e12,
           r.d_anti * 1e12, r.noise.peak, r.mna_noise, r.rel_err});
    if (r.noise.peak > worst_peak) {
      worst_peak = r.noise.peak;
      worst_width = r.noise.width;
    }
  }
  res.tables.push_back(std::move(t));
  res.coupling.n_conductors = 2;
  res.coupling.cc = ccfs.back() * line.c;
  res.coupling.km = 0.3;
  res.coupling.peak_noise = worst_peak;
  res.coupling.noise_width = worst_width;
  res.note(
      "Expected shapes (normalized VDD = 1): km = 0 rows show the capacitive "
      "Miller effect — inphase < quiet < antiphase, spread and victim noise "
      "growing with cc.  km = 0.3 rows: inductive coupling acts OPPOSITELY "
      "(in-phase loops see L(1+k), anti-phase L(1-k)), reversing the delay "
      "ordering and partially cancelling the capacitive victim noise as cc "
      "grows — the classic sign difference between C- and L-coupling that "
      "makes inductance-aware noise analysis non-optional for wide buses.");
  return res;
}

ScenarioResult ext_frequency_response(const ScenarioSpec& spec,
                                      ScenarioContext& ctx) {
  ScenarioResult res;
  const auto tech = Technology::nm100();
  std::vector<double> ls = spec.sweep.explicit_l;
  if (ls.empty()) ls = {0.5e-6, 2e-6};
  for (double l : ls) {
    const auto opt = optimize_rlc(tech, l, spec.optim_options());
    if (!opt.converged) {
      throw std::runtime_error(
          "ext_frequency_response: optimization failed at l = " +
          std::to_string(to_nH_per_mm(l)) + " nH/mm");
    }
    const auto dl = tech.rep.scaled(opt.k);
    const auto pc = pade_coeffs_hk(tech.rep, tech.line(l), opt.h, opt.k);

    rlc::spice::Circuit ckt;
    const auto src = ckt.node("src"), drv = ckt.node("drv"),
               end = ckt.node("end");
    ckt.add_vsource("V1", src, ckt.ground(), rlc::spice::DcSpec{0.0}, 1.0);
    ckt.add_resistor("Rs", src, drv, dl.rs_eff);
    ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
    rlc::ringosc::add_rlc_ladder(ckt, "ln", drv, end, tech.line(l), opt.h,
                                 spec.quick ? 16 : 32);
    ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);

    rlc::spice::AcOptions ao;
    ao.frequencies =
        rlc::spice::log_frequencies(1e8, 2e10, spec.quick ? 2 : 4);
    ao.compute_dc_op = false;
    ao.probes = {rlc::spice::Probe::node_voltage(end, "vend")};
    const rlc::exec::StopWatch sw;
    const auto ac = run_ac(ckt, ao);
    if (ctx.counters) ctx.counters->record_wall(sw.seconds());

    char title[96];
    std::snprintf(title, sizeof title,
                  "|H(jw)|, l = %.1f nH/mm (h_opt = %.2f mm, k_opt = %.0f)",
                  to_nH_per_mm(l), opt.h * 1e3, opt.k);
    Table t(title, {"f (GHz)", "|H| exact", "|H| 2-pole", "|H| ladder"});
    double peak_exact = 0.0;
    for (std::size_t i = 0; i < ao.frequencies.size(); ++i) {
      const double f = ao.frequencies[i];
      const std::complex<double> s{0.0, 2.0 * rlc::math::kPi * f};
      const double mag_exact = std::abs(
          rlc::tline::exact_transfer_dc_safe(tech.line(l), opt.h, dl, s));
      const double mag_pade = std::abs(pade_transfer(pc, s));
      const double mag_ladder = std::abs(ac.signal("vend")[i]);
      peak_exact = std::max(peak_exact, mag_exact);
      t.row({f * 1e-9, mag_exact, mag_pade, mag_ladder});
    }
    res.tables.push_back(std::move(t));

    char key[64];
    std::snprintf(key, sizeof key, "peaking_dB_l%.1f", to_nH_per_mm(l));
    res.metric(key, 20.0 * std::log10(peak_exact));
  }
  res.note(
      "Expected shape: low-pass with a resonant peak that grows with l; "
      "ladder tracks the exact line closely; the 2-pole model captures the "
      "first resonance but not the higher line modes.");
  return res;
}

ScenarioResult ext_scaling_trend(const ScenarioSpec& spec,
                                 ScenarioContext& ctx) {
  ScenarioResult res;
  const double l_test = 2e-6;
  std::vector<double> nodes{250.0, 180.0, 150.0, 130.0, 100.0, 85.0, 70.0};
  if (spec.quick) nodes = {250.0, 150.0, 100.0, 70.0};

  struct NodeRow {
    Technology tech;
    double tau_rc = 0.0, ratio = 0.0, lc = 0.0, undershoot = 0.0;
    bool ok = false;
  };
  // Nodes are independent: one optimization chain per node, fanned out.
  const auto rows =
      rlc::exec::parallel_map(ctx.pool_ref(), nodes, [&](double node_nm) {
        const rlc::exec::StopWatch sw;
        NodeRow row{Technology::interpolated(node_nm * 1e-9)};
        const auto rc = rc_optimum(row.tech);
        const auto at0 = optimize_rlc(row.tech, 0.0, spec.optim_options());
        OptimOptions warm = spec.optim_options();
        warm.h0 = at0.h;
        warm.k0 = at0.k;
        const auto atl = optimize_rlc(row.tech, l_test, warm);
        if (at0.converged && atl.converged) {
          row.ok = true;
          row.tau_rc = rc.tau;
          row.ratio = atl.delay_per_length / at0.delay_per_length;
          row.lc = critical_inductance(row.tech, atl.h, atl.k);
          const TwoPole sys(
              pade_coeffs_hk(row.tech.rep, row.tech.line(l_test), atl.h,
                             atl.k));
          row.undershoot = sys.undershoot() * row.tech.vdd;
        }
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return row;
      });

  Table t("Inductance sensitivity vs technology node (interpolated)",
          {"node", "VDD (V)", "tau_RC (ps)", "delay ratio (l=2nH/mm)",
           "lcrit @opt (nH/mm)", "undershoot @2nH/mm (V)"});
  for (const auto& row : rows) {
    if (!row.ok) continue;
    t.row({row.tech.name, row.tech.vdd, row.tau_rc * 1e12, row.ratio,
           row.lc * 1e6, row.undershoot});
  }
  res.tables.push_back(std::move(t));
  res.note(
      "Expected shape: monotone growth of the delay ratio and of the "
      "absolute ringing amplitude as the node shrinks, with l_crit falling — "
      "the paper's two data points extended to a trend (the interpolation "
      "assumes constant-ratio-per-generation scaling anchored at Table 1).");
  return res;
}

/// 50% delay via repeated Talbot inversion + bisection (the reference used
/// for both resistance models of the skin study).
double delay_of(const rlc::laplace::LaplaceFn& F, double tau_scale,
                int talbot_points) {
  const auto v = [&](double t) {
    return rlc::laplace::talbot_invert(F, t, talbot_points);
  };
  double lo = 0.02 * tau_scale, hi = 8.0 * tau_scale;
  if (v(lo) > 0.5 || v(hi) < 0.5) return -1.0;
  for (int i = 0; i < 55; ++i) {
    const double mid = 0.5 * (lo + hi);
    (v(mid) < 0.5 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

ScenarioResult ext_skin_effect(const ScenarioSpec& spec,
                               ScenarioContext& ctx) {
  ScenarioResult res;
  const double ws = rlc::tline::skin_crossover_angular_frequency(
      rlc::math::kRhoCopper, 2e-6, 2.5e-6);
  res.metric("skin_crossover_GHz", ws / (2.0 * rlc::math::kPi) * 1e-9);
  res.note("Table 1 wire (2 x 2.5 um Cu).");

  std::vector<double> ls = spec.sweep.explicit_l;
  if (ls.empty()) ls = {0.5e-6, 2e-6, 5e-6};
  if (spec.quick) ls = {0.5e-6, 5e-6};

  double max_shift = 0.0;
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto rc = rc_optimum(tech);

    struct Shift {
      double t_dc = 0.0, t_skin = 0.0;
    };
    // Each l is two independent bisection-inversion runs: fan out per l.
    const auto shifts =
        rlc::exec::parallel_map(ctx.pool_ref(), ls, [&](double l) {
          const rlc::exec::StopWatch sw;
          const auto line = tech.line(l);
          const auto dl = tech.rep.scaled(rc.k);
          const auto est = segment_delay(tech.rep, line, rc.h, rc.k);
          const auto Fdc = [&](std::complex<double> s) {
            return rlc::tline::exact_transfer_dc_safe(line, rc.h, dl, s) / s;
          };
          const auto Fskin = [&](std::complex<double> s) {
            return rlc::tline::exact_transfer_skin(line, rc.h, dl, ws, s) / s;
          };
          Shift sh;
          sh.t_dc = delay_of(Fdc, est.tau, spec.talbot_points);
          sh.t_skin = delay_of(Fskin, est.tau, spec.talbot_points);
          if (ctx.counters) ctx.counters->record_wall(sw.seconds());
          return sh;
        });

    Table t(tech.name + ": 50% delay, skin-corrected vs DC resistance",
            {"l (nH/mm)", "tau DC-r (ps)", "tau skin (ps)", "shift (%)"});
    for (std::size_t i = 0; i < ls.size(); ++i) {
      const double shift =
          100.0 * (shifts[i].t_skin - shifts[i].t_dc) / shifts[i].t_dc;
      max_shift = std::max(max_shift, std::abs(shift));
      t.row({to_nH_per_mm(ls[i]), shifts[i].t_dc * 1e12,
             shifts[i].t_skin * 1e12, shift});
    }
    res.tables.push_back(std::move(t));
  }
  res.metric("max_abs_shift_pct", max_shift);
  res.note(
      "Expected: delay shifts of a few percent at the low-l end (fast edges "
      "push part of the spectrum past the ~4 GHz crossover) shrinking below "
      "1% at high l where the response slows — small enough that the DC "
      "resistance model is adequate for delay optimization; the skin term "
      "mainly damps the ringing slightly.");
  return res;
}

}  // namespace

void register_extension_scenarios(ScenarioRegistry& r) {
  ScenarioSpec xtalk_defaults;
  xtalk_defaults.segments_per_line = 12;
  r.add({"ext_crosstalk",
         "Coupled-line delay spread and victim noise (100 nm, l = 1 nH/mm)",
         "extension", xtalk_defaults, ext_crosstalk});

  ScenarioSpec freq_defaults;
  freq_defaults.sweep.explicit_l = {0.5e-6, 2e-6};
  r.add({"ext_frequency_response",
         "|H(jw)| of an optimized 100 nm segment, three model levels",
         "extension", freq_defaults, ext_frequency_response});

  r.add({"ext_scaling_trend",
         "Inductance sensitivity vs technology node (interpolated)",
         "extension", {}, ext_scaling_trend});

  ScenarioSpec skin_defaults;
  skin_defaults.sweep.explicit_l = {0.5e-6, 2e-6, 5e-6};
  r.add({"ext_skin_effect",
         "50% delay with skin-corrected resistance vs the DC-r model",
         "extension", skin_defaults, ext_skin_effect});
}

}  // namespace rlc::scenario
