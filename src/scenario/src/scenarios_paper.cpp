/// Paper scenarios: Table 1 and Figures 2, 4-8.  Each body is the faithful
/// port of the corresponding legacy bench binary's computation — identical
/// call sequences and solver options, so the numeric series are unchanged
/// (bit-identical for fig4/fig7, verified by tests/scenario) — but results
/// are returned as tables/metrics instead of printed.

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "rlc/core/baselines.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/lcrit.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/core/two_pole.hpp"
#include "rlc/extract/bem2d.hpp"
#include "rlc/extract/resistance.hpp"
#include "rlc/laplace/talbot.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/scenario/registry.hpp"

namespace rlc::scenario {

namespace {

using namespace rlc::core;

core::SweepOptions sweep_options(const ScenarioSpec& spec,
                                 ScenarioContext& ctx) {
  core::SweepOptions sweep;
  sweep.optim = spec.optim_options();
  sweep.parallel = spec.parallel;
  sweep.pool = ctx.pool;
  sweep.counters = ctx.counters;
  return sweep;
}

ScenarioResult table1(const ScenarioSpec&, ScenarioContext&) {
  ScenarioResult res;

  Table params("Technology parameters",
               {"tech", "r (Ohm/mm)", "c (pF/m)", "eps_r", "h_optRC (mm)",
                "k_optRC", "tau_optRC (ps)", "r_s (kOhm)", "c_0 (fF)",
                "c_p (fF)"});
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto o = rc_optimum(tech);
    params.row({tech.name, tech.r * 1e-3, tech.c * 1e12, tech.eps_r, o.h * 1e3,
                o.k, o.tau * 1e12, tech.rep.rs * 1e-3, tech.rep.c0 * 1e15,
                tech.rep.cp * 1e15});
    res.metric("h_optRC_" + tech.name + "_mm", o.h * 1e3);
    res.metric("tau_optRC_" + tech.name + "_ps", o.tau * 1e12);
  }
  res.tables.push_back(std::move(params));
  res.note(
      "(paper: 250nm -> 14.4 mm, 578, 305.17 ps; 100nm -> 11.1 mm, 528, "
      "105.94 ps)");

  Table inverse("Inverse calibration: (r_s, c_0, c_p) from the measured optimum",
                {"tech", "r_s (kOhm)", "c_0 (fF)", "c_p (fF)"});
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const auto o = rc_optimum(tech);
    const auto rep =
        infer_repeater_from_rc_optimum(tech.r, tech.c, o.h, o.k, o.tau);
    inverse.row({tech.name, rep.rs * 1e-3, rep.c0 * 1e15, rep.cp * 1e15});
  }
  res.tables.push_back(std::move(inverse));

  Table extract("Extraction cross-check (resistance formula / 2D BEM substrate)",
                {"tech", "r bulk-Cu (Ohm/mm)", "r Table-1 (Ohm/mm)",
                 "barrier overhead", "c 2D-BEM (pF/m)", "c Table-1 (pF/m)",
                 "c ratio"});
  for (const auto& tech : {Technology::nm250(), Technology::nm100()}) {
    const double r_bulk = rlc::extract::resistance_per_length(
        rlc::math::kRhoCopper, tech.width, tech.thickness);
    rlc::extract::Bem2dOptions opts;
    opts.panels_per_side = 16;
    opts.eps_r = tech.eps_r;
    const auto bus = rlc::extract::parallel_bus(3, tech.width, tech.thickness,
                                                tech.pitch, tech.t_ins);
    const double c_bem = rlc::extract::total_capacitance(bus, 1, opts);
    extract.row({tech.name, r_bulk * 1e-3, tech.r * 1e-3, tech.r / r_bulk,
                 c_bem * 1e12, tech.c * 1e12, tech.c / c_bem});
  }
  res.tables.push_back(std::move(extract));
  res.note(
      "The 2D substrate-only BEM underestimates the paper's 3D multilayer "
      "extraction, as expected; the optimization scenarios use Table 1's c.");
  return res;
}

ScenarioResult fig2(const ScenarioSpec& spec, ScenarioContext&) {
  ScenarioResult res;

  const double b1 = 2e-10;
  const double b2_crit = 0.25 * b1 * b1;
  struct Curve {
    const char* name;
    PadeCoeffs pc;
  };
  const Curve curves[] = {
      {"overdamped (b2 = 0.25 b2crit)", {b1, 0.25 * b2_crit}},
      {"critically damped", {b1, b2_crit}},
      {"underdamped (b2 = 6 b2crit)", {b1, 6.0 * b2_crit}},
  };

  Table wave("Normalized step response in the three damping regimes",
             {"t/b1", "overdamped", "critically damped", "underdamped"});
  const int samples = spec.quick ? 12 : 30;
  for (int i = 0; i <= samples; ++i) {
    const double t = b1 * i * (30.0 / samples) / 4.0;
    wave.row({t / b1, TwoPole(curves[0].pc).step_response(t),
              TwoPole(curves[1].pc).step_response(t),
              TwoPole(curves[2].pc).step_response(t)});
  }
  res.tables.push_back(std::move(wave));

  Table regimes("Regime metrics (closed form)",
                {"regime", "zeta", "overshoot", "undershoot"});
  for (const auto& c : curves) {
    const TwoPole sys(c.pc);
    regimes.row({c.name, sys.damping_ratio(), sys.overshoot(),
                 sys.undershoot()});
  }
  res.tables.push_back(std::move(regimes));

  Table check("Cross-check vs numerical inverse Laplace of 1/(s(1+s b1+s^2 b2))",
              {"regime", "max |closed-form - Talbot|"});
  double worst = 0.0;
  for (const auto& c : curves) {
    double max_err = 0.0;
    for (int i = 1; i <= 24; ++i) {
      const double t = b1 * i / 3.0;
      const auto F = [&](std::complex<double> s) {
        return 1.0 / (s * (1.0 + s * c.pc.b1 + s * s * c.pc.b2));
      };
      max_err = std::max(
          max_err, std::abs(rlc::laplace::talbot_invert(F, t, spec.talbot_points) -
                            TwoPole(c.pc).step_response(t)));
    }
    check.row({c.name, max_err});
    worst = std::max(worst, max_err);
  }
  res.tables.push_back(std::move(check));
  res.metric("max_talbot_err", worst);
  return res;
}

ScenarioResult fig4(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto ls = spec.sweep.values();
  const Technology t250 = Technology::nm250();
  const Technology t100 = Technology::nm100();
  const auto sweep = sweep_options(spec, ctx);
  const auto r250 = optimize_rlc_sweep(t250, ls, sweep);
  const auto r100 = optimize_rlc_sweep(t100, ls, sweep);

  Table t("l_crit(h_optRLC, k_optRLC) vs line inductance l",
          {"l (nH/mm)", "lcrit 250nm (nH/mm)", "lcrit 100nm (nH/mm)"});
  for (std::size_t i = 0; i < ls.size(); ++i) {
    if (!r250[i].converged || !r100[i].converged) continue;
    const double lc250 = critical_inductance(t250, r250[i].h, r250[i].k);
    const double lc100 = critical_inductance(t100, r100[i].h, r100[i].k);
    t.row({to_nH_per_mm(ls[i]), to_nH_per_mm(lc250), to_nH_per_mm(lc100)});
  }
  res.tables.push_back(std::move(t));
  res.note(
      "Expected shape: both curves increase with l; 100nm < 250nm everywhere; "
      "l and l_crit same order of magnitude for practical l (so the "
      "Kahng-Muddu critically-damped delay approximation is not usable).");
  return res;
}

ScenarioResult fig5(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto ls = spec.sweep.values();
  const auto t250 = Technology::nm250();
  const auto t100 = Technology::nm100();
  const auto sweep = sweep_options(spec, ctx);
  const auto r250 = optimize_rlc_sweep(t250, ls, sweep);
  const auto r100 = optimize_rlc_sweep(t100, ls, sweep);
  const double h250 = rc_optimum(t250).h;
  const double h100 = rc_optimum(t100).h;

  Table t("h_optRLC / h_optRC vs line inductance l",
          {"l (nH/mm)", "250nm", "100nm"});
  for (std::size_t i = 0; i < ls.size(); ++i) {
    t.row({to_nH_per_mm(ls[i]), r250[i].converged ? r250[i].h / h250 : -1.0,
           r100[i].converged ? r100[i].h / h100 : -1.0});
  }
  res.tables.push_back(std::move(t));
  res.note(
      "Expected shape: < 1 at l = 0 (an effect curve-fitted formulas miss), "
      "monotonically increasing with l; the 100nm curve rises faster.");
  return res;
}

ScenarioResult fig6(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto ls = spec.sweep.values();
  const auto t250 = Technology::nm250();
  const auto t100 = Technology::nm100();
  const auto sweep = sweep_options(spec, ctx);
  const auto r250 = optimize_rlc_sweep(t250, ls, sweep);
  const auto r100 = optimize_rlc_sweep(t100, ls, sweep);
  const double k250 = rc_optimum(t250).k;
  const double k100 = rc_optimum(t100).k;

  Table t("k_optRLC / k_optRC vs line inductance l",
          {"l (nH/mm)", "250nm", "100nm", "Rdrv/Z0_lossless 250nm",
           "Rdrv/Z0_lossless 100nm"});
  for (std::size_t i = 0; i < ls.size(); ++i) {
    double z250 = -1.0, z100 = -1.0;
    if (ls[i] > 0.0) {
      z250 = (t250.rep.rs / r250[i].k) / t250.line(ls[i]).z0_lossless();
      z100 = (t100.rep.rs / r100[i].k) / t100.line(ls[i]).z0_lossless();
    }
    t.row({to_nH_per_mm(ls[i]), r250[i].converged ? r250[i].k / k250 : -1.0,
           r100[i].converged ? r100[i].k / k100 : -1.0, z250, z100});
  }
  res.tables.push_back(std::move(t));
  res.note(
      "Expected shape: monotone decrease, flattening with l; the driver "
      "impedance ratio trends toward impedance matching (slowly, from "
      "below).");
  return res;
}

ScenarioResult fig7(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto ls = spec.sweep.values();
  const Technology techs[] = {Technology::nm250(), Technology::nm100(),
                              Technology::nm100_with_250nm_dielectric()};
  const auto sweep = sweep_options(spec, ctx);
  std::vector<std::vector<OptimResult>> sweeps;
  for (const auto& t : techs) sweeps.push_back(optimize_rlc_sweep(t, ls, sweep));

  Table t("(tau/h)_RLC-opt / (tau/h)_opt-at-l=0 vs line inductance l",
          {"l (nH/mm)", "250nm", "100nm", "100nm(c=250nm)"});
  for (std::size_t i = 0; i < ls.size(); ++i) {
    std::vector<Value> row{to_nH_per_mm(ls[i])};
    for (const auto& sw : sweeps) {
      row.push_back((sw[i].converged && sw[0].converged)
                        ? sw[i].delay_per_length / sw[0].delay_per_length
                        : -1.0);
    }
    t.row(std::move(row));
  }
  res.tables.push_back(std::move(t));
  for (std::size_t j = 0; j < 3; ++j) {
    res.metric("ratio_at_lmax_" + techs[j].name,
               sweeps[j].back().delay_per_length / sweeps[j][0].delay_per_length);
  }
  res.note(
      "(paper: ~2x at 250nm, ~3.5x at 100nm; identical-c control confirms the "
      "increase is entirely due to scaled driver capacitance/resistance). "
      "Note: the control curve overlays the 100nm curve EXACTLY — the Pade "
      "coefficients are invariant under c -> a*c with h -> h/sqrt(a), "
      "k -> k*sqrt(a), so the normalized delay ratio does not depend on c at "
      "all.  This makes the paper's qualitative claim a provable identity.");
  return res;
}

ScenarioResult fig8(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const auto ls = spec.sweep.values();
  double worst[2] = {0.0, 0.0};
  const Technology techs[] = {Technology::nm250(), Technology::nm100()};
  const auto sweep = sweep_options(spec, ctx);
  std::vector<std::vector<double>> ratios(2);
  for (int j = 0; j < 2; ++j) {
    const auto rc = rc_optimum(techs[j]);
    const auto opt = optimize_rlc_sweep(techs[j], ls, sweep);
    // The fixed-(h, k) delay evaluations are independent: one pool task per
    // grid point, each timed into the scenario counters.
    ratios[j] = rlc::exec::parallel_map(ctx.pool_ref(), ls, [&](double l) {
      const rlc::exec::StopWatch sw;
      const double fixed =
          delay_per_length(techs[j].rep, techs[j].line(l), rc.h, rc.k,
                           spec.threshold);
      if (ctx.counters) ctx.counters->record_wall(sw.seconds());
      return fixed;
    });
    for (std::size_t i = 0; i < ls.size(); ++i) {
      ratios[j][i] =
          opt[i].converged ? ratios[j][i] / opt[i].delay_per_length : -1.0;
      worst[j] = std::max(worst[j], ratios[j][i]);
    }
  }

  Table t("tau/h at (h_optRC, k_optRC) divided by optimal RLC tau/h, vs l",
          {"l (nH/mm)", "250nm", "100nm"});
  for (std::size_t i = 0; i < ls.size(); ++i) {
    t.row({to_nH_per_mm(ls[i]), ratios[0][i], ratios[1][i]});
  }
  res.tables.push_back(std::move(t));
  res.metric("worst_penalty_250nm_pct", (worst[0] - 1.0) * 100.0);
  res.metric("worst_penalty_100nm_pct", (worst[1] - 1.0) * 100.0);
  res.note(
      "(paper: ~6% at 250nm, ~12% at 100nm — scaling increases the cost of "
      "not knowing the effective inductance)");
  return res;
}

}  // namespace

void register_paper_scenarios(ScenarioRegistry& r) {
  r.add({"table1", "Interconnect technology parameters (250 nm / 100 nm)",
         "table", {}, table1});
  r.add({"fig2",
         "Step response of a second-order system (three damping regimes)",
         "figure", {}, fig2});
  r.add({"fig4", "l_crit(h_optRLC, k_optRLC) vs line inductance l", "figure",
         {}, fig4});
  r.add({"fig5", "h_optRLC / h_optRC vs line inductance l", "figure", {},
         fig5});
  r.add({"fig6", "k_optRLC / k_optRC vs line inductance l", "figure", {},
         fig6});
  r.add({"fig7",
         "(tau/h)_RLC-opt / (tau/h)_opt-at-l=0 vs line inductance l",
         "figure", {}, fig7});
  r.add({"fig8",
         "tau/h at (h_optRC, k_optRC) divided by optimal RLC tau/h, vs l",
         "figure", {}, fig8});
}

}  // namespace rlc::scenario
