/// Power-aware sizing scenarios: the objective-API redesign's second axis.
/// power_<node> runs the delay-slack-constrained power minimization
/// (core::optimize, objective kPower) over an eps ladder and cross-checks
/// every answer against a brute-force sweep of the SAME log-spaced (h, k)
/// grid the solver and the Pareto front use; pareto_<node> emits the
/// non-dominated delay-power set itself.
///
/// Both run at the paper's coupled-scenario operating point, l = 1 nH/mm.
/// The chain power model (power.hpp) is const + K (k/h) in the sizing, so
/// the minimum-power end of every trade-off is the domain corner
/// (h_max, k_min) — the tables make that monotone structure visible and
/// the validator pins it.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "rlc/core/delay.hpp"
#include "rlc/core/optimize_api.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/core/power.hpp"
#include "rlc/scenario/registry.hpp"

namespace rlc::scenario {

namespace {

using namespace rlc::core;

constexpr double kPowerL = 1.0e-6;  ///< 1 nH/mm, the power test length

/// The request every solve of one scenario shares.  quick shrinks the
/// grid the same way for the solver, the Pareto sweep and the brute force,
/// so the in-table agreement holds in both modes.
OptimizeRequest base_request(const ScenarioSpec& spec) {
  OptimizeRequest req;
  req.objective = Objective::kPower;
  req.l = kPowerL;
  req.optim = spec.optim_options();
  if (spec.quick) {
    req.domain.h_points = 13;
    req.domain.k_points = 13;
  }
  return req;
}

/// Brute-force evaluation of the request's (h, k) grid: delay per length
/// and chain power at every point, rows fanned over the pool (index-ordered
/// reduce, so the numbers are thread-count independent).
struct GridEval {
  std::vector<double> hg, kg;      ///< the shared log_grid axes
  std::vector<double> dpl, power;  ///< row-major [k][h]; dpl 0 = no converge
  OptimResult un;                  ///< the delay optimum the grid centers on
};

GridEval evaluate_grid(const Technology& tech, const OptimizeRequest& req,
                       ScenarioContext& ctx) {
  GridEval g;
  g.un = optimize_rlc(tech, req.l, req.optim);
  if (!g.un.converged) {
    throw std::runtime_error("power grid: delay-optimal solve did not "
                             "converge");
  }
  g.hg = log_grid(g.un.h, req.domain.h_min_scale, req.domain.h_max_scale,
                  req.domain.h_points);
  g.kg = log_grid(g.un.k, req.domain.k_min_scale, req.domain.k_max_scale,
                  req.domain.k_points);
  const tline::LineParams line = tech.line(req.l);
  DelayOptions dopt;
  dopt.f = req.optim.f;
  const auto rows =
      rlc::exec::parallel_map(ctx.pool_ref(), g.kg, [&](double k) {
        const rlc::exec::StopWatch sw;
        std::vector<double> row;
        row.reserve(2 * g.hg.size());
        for (double h : g.hg) {
          const auto d = segment_delay(tech.rep, line, h, k, dopt);
          row.push_back(d.converged ? d.tau / h : 0.0);
          row.push_back(chain_power_per_length(tech, h, k, req.power));
        }
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return row;
      });
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); i += 2) {
      g.dpl.push_back(row[i]);
      g.power.push_back(row[i + 1]);
    }
  }
  return g;
}

/// Minimum grid power subject to dpl <= bound; negative when no grid point
/// is feasible (possible at eps = 0: the continuous optimum need not land
/// on a grid node).
double grid_min_power(const GridEval& g, double bound) {
  double best = -1.0;
  for (std::size_t i = 0; i < g.dpl.size(); ++i) {
    if (g.dpl[i] <= 0.0 || g.dpl[i] > bound) continue;
    if (best < 0.0 || g.power[i] < best) best = g.power[i];
  }
  return best;
}

// ---------------------------------------------------------------------------
// power_<node>: constrained solves over an eps ladder + grid cross-check.

ScenarioResult power_objective(const ScenarioSpec& spec, ScenarioContext& ctx,
                               const std::string& tech_name) {
  ScenarioResult res;
  const Technology tech = technology_by_name(tech_name);
  const OptimizeRequest base = base_request(spec);
  const std::vector<double> eps_list =
      spec.quick ? std::vector<double>{0.0, 0.05, 0.10}
                 : std::vector<double>{0.0, 0.02, 0.05, 0.10, 0.20};

  const GridEval grid = evaluate_grid(tech, base, ctx);

  const auto solves =
      rlc::exec::parallel_map(ctx.pool_ref(), eps_list, [&](double eps) {
        const rlc::exec::StopWatch sw;
        OptimizeRequest req = base;
        req.constraints.delay_slack_eps = eps;
        rlc::StatusOr<OptimizeResponse> resp = optimize(tech, req);
        if (!resp.is_ok()) {
          throw std::runtime_error("power solve (eps=" +
                                   std::to_string(eps) +
                                   "): " + resp.status().to_string());
        }
        if (ctx.counters) ctx.counters->record_wall(sw.seconds());
        return *resp;
      });

  Table t("Power-constrained (h, k): power bought by delay slack "
          "(l = 1 nH/mm, " + tech_name + ")",
          {"eps", "h (mm)", "k", "delay/len (ps/mm)", "power (mW/m)",
           "saved (%)", "active", "grid p (mW/m)"});
  double saved_5 = 0.0, saved_10 = 0.0, worst_grid_excess = 0.0;
  for (std::size_t i = 0; i < eps_list.size(); ++i) {
    const OptimizeResponse& r = solves[i];
    const double p = r.power.total();
    const double saved = 100.0 * (1.0 - p / r.power_ref);
    const double bound = (1.0 + eps_list[i]) * r.delay_ref;
    const double gp = grid_min_power(grid, bound);
    t.row({eps_list[i], r.sizing.h * 1e3, r.sizing.k,
           r.sizing.delay_per_length * 1e9, p * 1e3, saved,
           r.delay_constraint_active ? 1 : 0,
           gp > 0.0 ? Value(gp * 1e3) : Value("-")});
    if (eps_list[i] == 0.05) saved_5 = saved;
    if (eps_list[i] == 0.10) saved_10 = saved;
    if (gp > 0.0) {
      // The solver searches the continuous boundary of the same domain, so
      // it must never do worse than the best feasible grid point.
      worst_grid_excess = std::max(worst_grid_excess, 100.0 * (p / gp - 1.0));
    }
  }
  res.tables.push_back(std::move(t));
  res.metric("delay_ref_ps_mm", solves.front().delay_ref * 1e9);
  res.metric("power_ref_mW_m", solves.front().power_ref * 1e3);
  res.metric("power_saved_pct_eps5", saved_5);
  res.metric("power_saved_pct_eps10", saved_10);
  res.metric("max_grid_excess_pct", worst_grid_excess);
  res.note(
      "Every row satisfies delay <= (1 + eps) * T_opt.  eps = 0 is bitwise "
      "the delay-optimal point; growing slack buys power by stretching the "
      "segments (larger h) and shrinking the repeaters (smaller k), since "
      "chain power per length is const + K (k/h).  The grid column is the "
      "cheapest feasible point of the brute-force (h, k) grid the solver "
      "shares with the Pareto sweep; max_grid_excess_pct pins the solver at "
      "or below it (\"-\": no grid point meets the bound).");
  return res;
}

ScenarioResult power_100nm(const ScenarioSpec& spec, ScenarioContext& ctx) {
  return power_objective(spec, ctx, "100nm");
}

ScenarioResult power_35nm(const ScenarioSpec& spec, ScenarioContext& ctx) {
  return power_objective(spec, ctx, "35nm");
}

// ---------------------------------------------------------------------------
// pareto_<node>: the non-dominated delay-power set over the shared grid.

ScenarioResult pareto_objective(const ScenarioSpec& spec, ScenarioContext& ctx,
                                const std::string& tech_name) {
  ScenarioResult res;
  const Technology tech = technology_by_name(tech_name);
  const OptimizeRequest req = base_request(spec);

  const rlc::exec::StopWatch sw;
  rlc::StatusOr<std::vector<ParetoPoint>> front =
      pareto_front(tech, req, ctx.pool);
  if (!front.is_ok()) {
    throw std::runtime_error("pareto_front: " + front.status().to_string());
  }
  if (ctx.counters) ctx.counters->record_wall(sw.seconds());

  Table t("Delay-power Pareto front over the (h, k) grid (l = 1 nH/mm, " +
              tech_name + "; sorted by delay, power strictly decreasing)",
          {"h (mm)", "k", "delay/len (ps/mm)", "power (mW/m)", "dyn (mW/m)",
           "sc (mW/m)", "leak (mW/m)"});
  for (const ParetoPoint& p : *front) {
    t.row({p.h * 1e3, p.k, p.delay_per_length * 1e9, p.power_per_length * 1e3,
           p.power.dynamic * 1e3, p.power.short_circuit * 1e3,
           p.power.leakage * 1e3});
  }
  res.tables.push_back(std::move(t));
  res.metric("front_points", static_cast<double>(front->size()));
  if (!front->empty()) {
    res.metric("delay_min_ps_mm", front->front().delay_per_length * 1e9);
    res.metric("delay_max_ps_mm", front->back().delay_per_length * 1e9);
    res.metric("power_max_mW_m", front->front().power_per_length * 1e3);
    res.metric("power_min_mW_m", front->back().power_per_length * 1e3);
    // Knee economics: what the last doubling of delay buys in power.
    res.metric("power_span_ratio", front->front().power_per_length /
                                       front->back().power_per_length);
  }
  res.note(
      "Non-dominance is structural: the rows are sorted by delay and each "
      "successive row has strictly lower power, so no row is beaten on both "
      "axes by another (the validator re-checks).  The fast end is the "
      "delay optimum's grid neighbourhood; the frugal end is the "
      "(h_max, k_min) domain corner that the eps = inf constrained solve "
      "returns bitwise.");
  return res;
}

ScenarioResult pareto_100nm(const ScenarioSpec& spec, ScenarioContext& ctx) {
  return pareto_objective(spec, ctx, "100nm");
}

ScenarioResult pareto_35nm(const ScenarioSpec& spec, ScenarioContext& ctx) {
  return pareto_objective(spec, ctx, "35nm");
}

}  // namespace

void register_power_scenarios(ScenarioRegistry& r) {
  r.add({"power_100nm",
         "Power-minimal (h, k) under a delay-slack ladder, 100 nm node",
         "extension", {}, power_100nm, "power"});
  r.add({"power_35nm",
         "Power-minimal (h, k) under a delay-slack ladder, extrapolated "
         "35 nm node",
         "extension", {}, power_35nm, "power"});
  r.add({"pareto_100nm",
         "Non-dominated delay-power front over the (h, k) grid, 100 nm node",
         "extension", {}, pareto_100nm, "power"});
  r.add({"pareto_35nm",
         "Non-dominated delay-power front over the (h, k) grid, extrapolated "
         "35 nm node",
         "extension", {}, pareto_35nm, "power"});
}

}  // namespace rlc::scenario
