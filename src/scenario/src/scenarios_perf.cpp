/// Performance scenarios, backing the paper's efficiency claims and the
/// repo's own perf trajectory:
///   * perf_solvers — Eq. (3) delay solve ("less than four iterations in
///     all cases"), the (h, k) optimization ("less than six iterations"),
///     sweep scaling serial vs parallel, and the supporting kernels
///     (sparse LU, transient steps, Nelder-Mead fallback);
///   * perf_exact — the legacy-vs-engine exact-delay head-to-head whose
///     metrics (speedup, accuracy) future PRs regress-check.
///
/// Timing is medians of steady_clock reps (the google-benchmark dependency
/// is gone); a volatile sink keeps the measured calls alive.  For clean
/// numbers run these scenarios alone (`rlc_run perf_solvers`) — under
/// `--all` they share the pool with concurrent scenarios.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <iterator>
#include <vector>

#include "rlc/base/simd.hpp"
#include "rlc/core/delay.hpp"
#include "rlc/core/elmore.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/linalg/sparse_lu.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/ringosc/ladder.hpp"
#include "rlc/scenario/registry.hpp"
#include "rlc/spice/transient.hpp"
#include "rlc/tline/batch_evaluator.hpp"
#include "rlc/tline/evaluator.hpp"

namespace rlc::scenario {

namespace {

using namespace rlc::core;

volatile double g_sink = 0.0;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Median wall seconds of `reps` runs of fn().
template <typename F>
double time_s(F&& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  return median(std::move(samples));
}

// ---------------------------------------------------------------- solvers

ScenarioResult perf_solvers(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const int reps = spec.quick ? 3 : 5;
  const auto tech = Technology::nm100();
  const auto rc = rc_optimum(tech);

  // Eq. (3) threshold-delay solve: iterations per solve and cost.
  Table delay_t("Eq. (3) delay solve (paper: < 4 Newton iterations)",
                {"l (nH/mm)", "newton iters/solve", "median time (us)"});
  double delay_iters_max = 0.0;
  const int delay_inner = spec.quick ? 200 : 2000;
  for (double l_nh : {0.0, 2.0, 5.0}) {
    const double l = l_nh * 1e-6;
    const TwoPole sys(pade_coeffs_hk(tech.rep, tech.line(l), rc.h, rc.k));
    long long iters = 0, solves = 0;
    const double s = time_s(
        [&] {
          for (int i = 0; i < delay_inner; ++i) {
            const auto r = threshold_delay(sys);
            g_sink = r.tau;
            iters += r.newton_iterations;
            ++solves;
          }
        },
        reps);
    const double iters_per =
        static_cast<double>(iters) / static_cast<double>(solves);
    delay_iters_max = std::max(delay_iters_max, iters_per);
    delay_t.row({l_nh, iters_per, s / delay_inner * 1e6});
  }
  res.tables.push_back(std::move(delay_t));
  res.metric("delay_newton_iters_max", delay_iters_max);

  // (h, k) optimization, warm-started as in a sweep (the paper's use case).
  Table opt_t("(h, k) optimization, warm-started (paper: < 6 iterations)",
              {"l (nH/mm)", "newton iters/solve", "median time (us)"});
  double opt_iters_max = 0.0;
  const int opt_inner = spec.quick ? 20 : 100;
  for (double l_nh : {0.0, 2.0, 5.0}) {
    const double l = l_nh * 1e-6;
    OptimOptions opts = spec.optim_options();
    const auto warm = optimize_rlc(tech, l > 0 ? l - 0.5e-6 : 0.0,
                                   spec.optim_options());
    opts.h0 = warm.h;
    opts.k0 = warm.k;
    long long iters = 0, solves = 0;
    const double s = time_s(
        [&] {
          for (int i = 0; i < opt_inner; ++i) {
            const auto r = optimize_rlc(tech, l, opts);
            g_sink = r.delay_per_length;
            iters += r.newton_iterations;
            ++solves;
          }
        },
        reps);
    const double iters_per =
        static_cast<double>(iters) / static_cast<double>(solves);
    opt_iters_max = std::max(opt_iters_max, iters_per);
    opt_t.row({l_nh, iters_per, s / opt_inner * 1e6});
  }
  res.tables.push_back(std::move(opt_t));
  res.metric("optimize_newton_iters_max", opt_iters_max);

  // Nelder-Mead fallback: the price of not having analytic sensitivities.
  {
    OptimOptions opts = spec.optim_options();
    opts.max_iterations = 1;  // force the fallback path
    const double s_nm = time_s(
        [&] { g_sink = optimize_rlc(tech, 2e-6, opts).delay_per_length; },
        reps);
    OptimOptions newton = spec.optim_options();
    const double s_newton = time_s(
        [&] { g_sink = optimize_rlc(tech, 2e-6, newton).delay_per_length; },
        reps);
    res.metric("nelder_mead_us", s_nm * 1e6);
    res.metric("newton_us", s_newton * 1e6);
    res.metric("nelder_mead_slowdown", s_nm / s_newton);
  }

  // Sweep scaling: serial vs the chunked-continuation parallel path.
  Table sweep_t("Inductance-sweep scaling (65-point grid, 250 nm)",
                {"variant", "threads", "median wall (ms)"});
  {
    const auto t250 = Technology::nm250();
    std::vector<double> ls;
    const int n = spec.quick ? 32 : 64;
    for (int i = 0; i <= n; ++i) ls.push_back(5e-6 * i / n);
    double wall[2] = {0.0, 0.0};
    for (int parallel = 0; parallel < 2; ++parallel) {
      SweepOptions sweep;
      sweep.optim = spec.optim_options();
      sweep.parallel = parallel != 0;
      sweep.pool = ctx.pool;
      sweep.counters = ctx.counters;
      wall[parallel] = time_s(
          [&] {
            const auto rs = optimize_rlc_sweep(t250, ls, sweep);
            g_sink = rs.back().delay_per_length;
          },
          reps);
      sweep_t.row({parallel ? "parallel" : "serial",
                   parallel ? static_cast<double>(ctx.pool_ref().size()) : 1.0,
                   wall[parallel] * 1e3});
    }
    res.metric("sweep_parallel_speedup", wall[0] / wall[1]);
  }
  res.tables.push_back(std::move(sweep_t));

  // Supporting kernels: sparse LU on ladder matrices, one segment transient.
  Table kern_t("Supporting kernels",
               {"kernel", "size", "median time (us)"});
  {
    std::vector<int> sizes{100, 400, 1600};
    if (spec.quick) sizes = {100, 400};
    for (int n : sizes) {
      std::vector<rlc::linalg::Triplet> trip;
      for (int i = 0; i < n; ++i) {
        trip.push_back({i, i, 2.1});
        if (i > 0) trip.push_back({i, i - 1, -1.0});
        if (i + 1 < n) trip.push_back({i, i + 1, -1.0});
      }
      const auto m = rlc::linalg::CscMatrix::from_triplets(n, n, trip);
      const std::vector<double> b(static_cast<std::size_t>(n), 1.0);
      const double s_factor = time_s(
          [&] {
            const rlc::linalg::SparseLU lu(m);
            g_sink = lu.solve(b)[0];
          },
          reps);
      kern_t.row({"sparse LU factor+solve (ladder)", n, s_factor * 1e6});
      rlc::linalg::SparseLU lu(m);
      const double s_refactor =
          time_s([&] { g_sink = lu.refactor(m) ? 1.0 : 0.0; }, reps);
      kern_t.row({"sparse LU numeric refactor", n, s_refactor * 1e6});
    }
    for (int nseg : {8, 32}) {
      const double s_tr = time_s(
          [&] {
            const auto dl = tech.rep.scaled(rc.k);
            rlc::spice::Circuit ckt;
            const auto src = ckt.node("s"), drv = ckt.node("d"),
                       end = ckt.node("e");
            ckt.add_vsource("V", src, ckt.ground(),
                            rlc::spice::PulseSpec{0, 1, 0, 1e-14, 1e-14, 1, 0});
            ckt.add_resistor("Rs", src, drv, dl.rs_eff);
            ckt.add_capacitor("Cp", drv, ckt.ground(), dl.cp_eff);
            rlc::ringosc::add_rlc_ladder(ckt, "ln", drv, end, tech.line(2e-6),
                                         rc.h, nseg);
            ckt.add_capacitor("Cl", end, ckt.ground(), dl.cl_eff);
            rlc::spice::TransientOptions o;
            o.tstop = 1e-9;
            o.dt = 2e-12;
            o.probes = {rlc::spice::Probe::node_voltage(end, "v")};
            g_sink = static_cast<double>(run_transient(ckt, o).steps_accepted);
          },
          reps);
      kern_t.row({"RLC segment transient (500 steps)", nseg, s_tr * 1e6});
    }
  }
  res.tables.push_back(std::move(kern_t));
  res.note(
      "Timings are medians over steady_clock reps; run this scenario alone "
      "for clean numbers (under --all it shares the machine with concurrent "
      "scenarios).  The iteration counts are timing-independent.");
  return res;
}

// ------------------------------------------------------------ exact engine

struct Config {
  Technology tech;
  double l = 0.0;
  double h = 0.0, k = 0.0, tau = 0.0;
};

Config config_for(int node_nm, double l) {
  Config c{node_nm == 250 ? Technology::nm250() : Technology::nm100(), l,
           0.0, 0.0, 0.0};
  const auto rc = rc_optimum(c.tech);
  c.h = rc.h;
  c.k = rc.k;
  c.tau = segment_delay(c.tech.rep, c.tech.line(l), rc.h, rc.k).tau;
  return c;
}

ScenarioResult perf_exact(const ScenarioSpec& spec, ScenarioContext& ctx) {
  ScenarioResult res;
  const int reps = spec.quick ? 3 : 9;
  const struct {
    int node;
    double l;
  } configs[] = {{250, 0.0}, {250, 1e-6}, {250, 3e-6},
                 {100, 0.0}, {100, 1e-6}, {100, 3e-6}};

  Table t("Exact threshold delay: legacy per-t bisection vs windowed engine",
          {"tech", "l (nH/mm)", "legacy (ms)", "engine (ms)", "speedup",
           "eval ratio", "rel err"});
  double min_speedup = 1e300, max_rel_err = 0.0, min_eval_ratio = 1e300;
  double geo = 1.0;
  for (const auto& cfg : configs) {
    const auto c = config_for(cfg.node, cfg.l);
    ExactOptions legacy = spec.exact_options();
    legacy.legacy_bisection = true;
    const ExactOptions engine = spec.exact_options();

    ExactStats legacy_stats, engine_stats;
    const double d_legacy =
        exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, spec.threshold,
                              legacy, &legacy_stats)
            .value();
    const double d_engine =
        exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau, spec.threshold,
                              engine, &engine_stats)
            .value();
    const double rel_err = std::abs(d_engine - d_legacy) / d_legacy;

    const double s_legacy = time_s(
        [&] {
          g_sink = exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau,
                                         spec.threshold, legacy)
                       .value_or(0.0);
        },
        reps);
    const double s_engine = time_s(
        [&] {
          g_sink = exact_threshold_delay(c.tech, c.l, c.h, c.k, c.tau,
                                         spec.threshold, engine)
                       .value_or(0.0);
        },
        reps);
    const double speedup = s_legacy / s_engine;
    const double eval_ratio =
        static_cast<double>(legacy_stats.transfer_evals) /
        static_cast<double>(engine_stats.transfer_evals);
    if (ctx.counters) {
      ctx.counters->record_solve(engine_stats.brent_iterations,
                                 engine_stats.legacy_fallbacks > 0, false,
                                 s_legacy + s_engine);
    }

    min_speedup = std::min(min_speedup, speedup);
    min_eval_ratio = std::min(min_eval_ratio, eval_ratio);
    max_rel_err = std::max(max_rel_err, rel_err);
    geo *= speedup;
    t.row({c.tech.name, to_nH_per_mm(cfg.l), s_legacy * 1e3, s_engine * 1e3,
           speedup, eval_ratio, rel_err});
  }
  geo = std::pow(geo, 1.0 / std::size(configs));
  res.tables.push_back(std::move(t));

  // Cold-kernel head-to-head: the cache-miss hot path of the engine is
  // filling a fresh Talbot contour with transfer samples.  Replay that
  // workload (every node distinct, so the per-point memo never hits) three
  // ways: per-point scalar TransferEvaluator, SoA batch at forced-scalar
  // level, SoA batch at the active SIMD level.  Evaluators are constructed
  // inside the timed region — cold means cold.
  Table kt("Cold-contour transfer kernel: per-point vs SoA batch",
           {"tech", "l (nH/mm)", "scalar_per_point (us)", "batch_scalar (us)",
            "batch_simd (us)", "batch speedup", "simd gain"});
  double batch_speedup = 1e300, batch_simd_vs_scalar = 1e300;
  double batch_kernel_rel_err = 0.0;
  for (const auto& cfg : {configs[1], configs[5]}) {
    const auto c = config_for(cfg.node, cfg.l);
    const auto line = c.tech.line(c.l);
    const auto dl = c.tech.rep.scaled(c.k);
    // The cold workload: every node of many fresh contours, anchored across
    // the engine's whole descent range (feet shallow enough that the kernel
    // stays finite — overflowed windows exit early and prove nothing).
    const int M = spec.exact_options().window_points;
    const int n_contours = spec.quick ? 24 : 96;
    std::vector<double> sre, sim;
    sre.reserve(static_cast<std::size_t>(n_contours) * M);
    sim.reserve(sre.capacity());
    for (int j = 0; j < n_contours; ++j) {
      const double t_max =
          c.tau * (0.1 + 7.9 * j / static_cast<double>(n_contours - 1));
      const double r = 2.0 * M / (5.0 * t_max);
      for (int k = 0; k < M; ++k) {
        if (k == 0) {
          sre.push_back(r);
          sim.push_back(0.0);
          continue;
        }
        const double theta = k * rlc::math::kPi / M;
        sre.push_back(r * theta * std::cos(theta) / std::sin(theta));
        sim.push_back(r * theta);
      }
    }
    const std::size_t n = sre.size();
    std::vector<double> fre(n), fim(n);
    const int kreps = spec.quick ? 5 : 15;

    const double s_point = time_s(
        [&] {
          const rlc::tline::TransferEvaluator ev(line, c.h, dl);
          double acc = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            acc += ev.step({sre[i], sim[i]}).real();
          }
          g_sink = acc;
        },
        kreps);
    const double s_bscalar = time_s(
        [&] {
          const rlc::tline::BatchTransferEvaluator ev(
              line, c.h, dl, rlc::simd::Level::kScalar);
          ev.step(sre.data(), sim.data(), fre.data(), fim.data(), n);
          g_sink = fre[0];
        },
        kreps);
    const double s_bsimd = time_s(
        [&] {
          const rlc::tline::BatchTransferEvaluator ev(line, c.h, dl);
          ev.step(sre.data(), sim.data(), fre.data(), fim.data(), n);
          g_sink = fre[0];
        },
        kreps);

    // Agreement between the per-point values and the batch (active-level)
    // values on the same nodes — fre/fim hold the last batch_simd pass.
    const rlc::tline::TransferEvaluator ref(line, c.h, dl);
    for (std::size_t i = 0; i < n; ++i) {
      const std::complex<double> p = ref.step({sre[i], sim[i]});
      const double mag = std::abs(p);
      if (!std::isfinite(mag) || mag == 0.0) continue;
      const double err = std::abs(std::complex<double>(fre[i], fim[i]) - p);
      batch_kernel_rel_err = std::max(batch_kernel_rel_err, err / mag);
    }

    batch_speedup = std::min(batch_speedup, s_point / s_bsimd);
    batch_simd_vs_scalar =
        std::min(batch_simd_vs_scalar, s_bscalar / s_bsimd);
    kt.row({c.tech.name, to_nH_per_mm(cfg.l), s_point * 1e6, s_bscalar * 1e6,
            s_bsimd * 1e6, s_point / s_bsimd, s_bscalar / s_bsimd});
  }
  res.tables.push_back(std::move(kt));
  res.metric("batch_speedup", batch_speedup);
  res.metric("batch_simd_vs_scalar", batch_simd_vs_scalar);
  res.metric("batch_kernel_rel_err", batch_kernel_rel_err);
  res.metric("batch_speedup_target", 2.5);

  res.metric("min_speedup", min_speedup);
  res.metric("geomean_speedup", geo);
  res.metric("min_eval_ratio", min_eval_ratio);
  res.metric("max_rel_err", max_rel_err);
  res.metric("speedup_target", 10.0);
  res.metric("rel_err_budget", 1e-3);
  res.note(
      "Accuracy (max_rel_err vs rel_err_budget) is timing-independent and "
      "CI-checked; the speedup target is advisory under --all where "
      "concurrent scenarios share the machine.  The cold-kernel table "
      "isolates the contour-fill hot path: batch_speedup is enforced (>= "
      "batch_speedup_target on full runs with SIMD active) and "
      "batch_kernel_rel_err pins scalar-vs-batch agreement.");
  return res;
}

}  // namespace

void register_perf_scenarios(ScenarioRegistry& r) {
  r.add({"perf_solvers",
         "Solver efficiency: Newton iteration counts, sweep scaling, kernel "
         "timings",
         "perf", {}, perf_solvers});
  r.add({"perf_exact",
         "Exact-waveform engine vs legacy bisection: speedup and accuracy",
         "perf", {}, perf_exact});
}

}  // namespace rlc::scenario
