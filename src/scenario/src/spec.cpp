#include "rlc/scenario/spec.hpp"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace rlc::scenario {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("rlc::scenario: " + what);
}

io::JsonArray to_json_array(const std::vector<double>& v) {
  io::JsonArray a;
  for (double x : v) a.push(x);
  return a;
}

std::vector<double> numbers_of(const io::JsonValue& v, const char* where) {
  std::vector<double> out;
  for (const auto& item : v.items()) {
    if (item.kind() != io::JsonValue::Kind::kNumber) {
      invalid(std::string(where) + " must contain only numbers");
    }
    out.push_back(item.as_number());
  }
  return out;
}

}  // namespace

std::vector<double> SweepSpec::values() const {
  if (const rlc::Status st = validate(); !st.is_ok()) {
    throw std::invalid_argument(st.to_string());
  }
  if (!explicit_l.empty()) return explicit_l;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  if (points == 1) {
    out.push_back(l_min);
    return out;
  }
  // Same arithmetic as the historical bench::inductance_sweep helper
  // (l_max * i / n with l_min == 0), so figure grids are bit-identical.
  for (int i = 0; i < points; ++i) {
    out.push_back(l_min + (l_max - l_min) * static_cast<double>(i) /
                              static_cast<double>(points - 1));
  }
  return out;
}

rlc::Status SweepSpec::validate() const {
  const auto bad = [](const char* what) {
    return rlc::Status::invalid_argument(what);
  };
  if (!explicit_l.empty()) {
    for (double l : explicit_l) {
      if (!std::isfinite(l) || l < 0.0) {
        return bad("sweep.explicit_l values must be finite and >= 0");
      }
    }
    return rlc::Status::ok();
  }
  if (points < 1) return bad("sweep.points must be >= 1");
  if (!std::isfinite(l_min) || !std::isfinite(l_max)) {
    return bad("sweep bounds must be finite");
  }
  if (l_min < 0.0) return bad("sweep.l_min must be >= 0");
  if (l_max < l_min) return bad("sweep.l_max must be >= sweep.l_min");
  if (points > 1 && l_max == l_min) {
    return bad("sweep with points > 1 needs l_max > l_min");
  }
  return rlc::Status::ok();
}

rlc::Status ScenarioSpec::validate() const {
  const auto bad = [](std::string what) {
    return rlc::Status::invalid_argument(std::move(what));
  };
  if (scenario.empty()) return bad("spec.scenario must be set");
  if (const rlc::Status st = sweep.validate(); !st.is_ok()) return st;
  try {
    technology_by_name(technology);  // throws for unknown ids
  } catch (const std::exception& e) {
    return bad(e.what());
  }
  if (!(threshold > 0.0 && threshold < 1.0)) {
    return bad("spec.threshold must be in (0, 1)");
  }
  if (segments_per_line < 1) return bad("spec.segments_per_line must be >= 1");
  if (ring_stages < 3 || ring_stages % 2 == 0) {
    return bad("spec.ring_stages must be odd and >= 3");
  }
  if (max_newton_iterations < 1) {
    return bad("spec.max_newton_iterations must be >= 1");
  }
  if (!(residual_tol > 0.0)) return bad("spec.residual_tol must be > 0");
  if (talbot_points < 8) return bad("spec.talbot_points must be >= 8");
  return rlc::Status::ok();
}

core::OptimOptions ScenarioSpec::optim_options() const {
  core::OptimOptions o;
  o.f = threshold;
  o.max_iterations = max_newton_iterations;
  o.residual_tolerance = residual_tol;
  return o;
}

core::ExactOptions ScenarioSpec::exact_options() const {
  core::ExactOptions o;
  o.talbot_points = talbot_points;
  o.window_points = talbot_points;
  return o;
}

io::Json ScenarioSpec::to_json() const {
  io::Json sweep_j;
  sweep_j.set("l_min", sweep.l_min);
  sweep_j.set("l_max", sweep.l_max);
  sweep_j.set("points", sweep.points);
  if (!sweep.explicit_l.empty()) {
    sweep_j.set("explicit_l", to_json_array(sweep.explicit_l));
  }
  io::Json j;
  j.set("scenario", scenario);
  j.set("technology", technology);
  j.set("sweep", sweep_j);
  j.set("threshold", threshold);
  j.set("segments_per_line", segments_per_line);
  j.set("ring_stages", ring_stages);
  j.set("quick", quick);
  j.set("parallel", parallel);
  j.set("max_newton_iterations", max_newton_iterations);
  j.set("residual_tol", residual_tol);
  j.set("talbot_points", talbot_points);
  return j;
}

rlc::StatusOr<ScenarioSpec> ScenarioSpec::from_json(const io::JsonValue& v) {
  if (v.kind() != io::JsonValue::Kind::kObject) {
    return rlc::Status::invalid_argument("spec must be a JSON object");
  }
  ScenarioSpec spec;
  try {
    spec.scenario = v.string_or("scenario", spec.scenario);
    spec.technology = v.string_or("technology", spec.technology);
    if (const io::JsonValue* sw = v.find("sweep")) {
      if (sw->kind() != io::JsonValue::Kind::kObject) {
        invalid("spec.sweep must be an object");
      }
      spec.sweep.l_min = sw->number_or("l_min", spec.sweep.l_min);
      spec.sweep.l_max = sw->number_or("l_max", spec.sweep.l_max);
      spec.sweep.points = static_cast<int>(sw->int_or("points", spec.sweep.points));
      if (const io::JsonValue* ex = sw->find("explicit_l")) {
        spec.sweep.explicit_l = numbers_of(*ex, "spec.sweep.explicit_l");
      }
    }
    spec.threshold = v.number_or("threshold", spec.threshold);
    spec.segments_per_line =
        static_cast<int>(v.int_or("segments_per_line", spec.segments_per_line));
    spec.ring_stages = static_cast<int>(v.int_or("ring_stages", spec.ring_stages));
    spec.quick = v.bool_or("quick", spec.quick);
    spec.parallel = v.bool_or("parallel", spec.parallel);
    spec.max_newton_iterations = static_cast<int>(
        v.int_or("max_newton_iterations", spec.max_newton_iterations));
    spec.residual_tol = v.number_or("residual_tol", spec.residual_tol);
    spec.talbot_points =
        static_cast<int>(v.int_or("talbot_points", spec.talbot_points));
  } catch (const std::exception& e) {
    // numbers_of / the tolerant accessors throw on shape mismatches.
    return rlc::Status::invalid_argument(e.what());
  }
  if (rlc::Status st = spec.validate(); !st.is_ok()) return st;
  return spec;
}

rlc::StatusOr<ScenarioSpec> ScenarioSpec::from_json_text(
    const std::string& text) {
  try {
    return from_json(io::parse_json(text));
  } catch (const std::exception& e) {
    return rlc::Status::invalid_argument(e.what());
  }
}

core::Technology technology_by_name(const std::string& name) {
  if (name == "250nm" || name == "250") return core::Technology::nm250();
  if (name == "100nm" || name == "100") return core::Technology::nm100();
  if (name == "100nm_c250") {
    return core::Technology::nm100_with_250nm_dielectric();
  }
  // "<N>nm" or a bare number: the interpolated node at N nanometers.
  std::string digits = name;
  if (digits.size() > 2 && digits.compare(digits.size() - 2, 2, "nm") == 0) {
    digits.resize(digits.size() - 2);
  }
  if (!digits.empty()) {
    bool numeric = true;
    bool dot = false;
    for (char ch : digits) {
      if (ch == '.' && !dot) {
        dot = true;
      } else if (!std::isdigit(static_cast<unsigned char>(ch))) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      const double nm = std::stod(digits);
      if (nm > 0.0) return core::Technology::interpolated(nm * 1e-9);
    }
  }
  invalid("unknown technology id \"" + name +
          "\" (expected 250nm, 100nm, 100nm_c250, or <N>nm)");
}

}  // namespace rlc::scenario
