#include "rlc/scenario/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlc::scenario {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry r;
  return r;
}

void ScenarioRegistry::add(Scenario s) {
  if (s.name.empty()) {
    throw std::invalid_argument("rlc::scenario: scenario name must be set");
  }
  if (find(s.name) != nullptr) {
    throw std::invalid_argument("rlc::scenario: duplicate scenario \"" +
                                s.name + "\"");
  }
  if (s.defaults.scenario.empty()) s.defaults.scenario = s.name;
  s.defaults.validate();
  scenarios_.push_back(std::move(s));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it =
      std::find_if(scenarios_.begin(), scenarios_.end(),
                   [&](const Scenario& s) { return s.name == name; });
  return it == scenarios_.end() ? nullptr : &*it;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.name);
  return out;
}

void register_all_scenarios() {
  static const bool once = [] {
    ScenarioRegistry& r = ScenarioRegistry::global();
    register_paper_scenarios(r);
    register_ring_scenarios(r);
    register_ablation_scenarios(r);
    register_extension_scenarios(r);
    register_perf_scenarios(r);
    return true;
  }();
  (void)once;
}

ScenarioSpec quick_spec(ScenarioSpec spec) {
  spec.quick = true;
  if (spec.sweep.explicit_l.empty()) {
    spec.sweep.points = std::min(spec.sweep.points, 7);
  }
  spec.segments_per_line = std::min(spec.segments_per_line, 8);
  return spec;
}

ScenarioResult run_scenario(const Scenario& s, const ScenarioSpec& spec,
                            exec::ThreadPool* pool) {
  spec.validate();
  exec::Counters counters;
  ScenarioContext ctx{pool, &counters};
  const exec::StopWatch watch;
  ScenarioResult result = s.fn(spec, ctx);
  result.wall_seconds = watch.seconds();
  result.name = s.name;
  result.title = s.title;
  result.spec = spec;
  result.counters = counters.snapshot();
  result.threads = static_cast<int>(ctx.pool_ref().size());
  return result;
}

}  // namespace rlc::scenario
