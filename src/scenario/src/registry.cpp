#include "rlc/scenario/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"

namespace rlc::scenario {

namespace {

/// Span rollup delta: later minus earlier, matched by name; names whose
/// counts did not move are dropped.  Rollups are cumulative sums, so the
/// subtraction is exact per name.
std::vector<obs::Tracer::SpanStats> rollup_delta(
    const std::vector<obs::Tracer::SpanStats>& earlier,
    std::vector<obs::Tracer::SpanStats> later) {
  std::unordered_map<std::string, const obs::Tracer::SpanStats*> by_name;
  for (const auto& s : earlier) by_name.emplace(s.name, &s);
  std::vector<obs::Tracer::SpanStats> out;
  for (auto& s : later) {
    const auto it = by_name.find(s.name);
    if (it != by_name.end()) {
      s.count -= it->second->count;
      s.total_ns -= it->second->total_ns;
      s.top_level_ns -= it->second->top_level_ns;
    }
    if (s.count > 0) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry r;
  return r;
}

void ScenarioRegistry::add(Scenario s) {
  if (s.name.empty()) {
    throw std::invalid_argument("rlc::scenario: scenario name must be set");
  }
  if (find(s.name) != nullptr) {
    throw std::invalid_argument("rlc::scenario: duplicate scenario \"" +
                                s.name + "\"");
  }
  if (s.objective != "delay" && s.objective != "noise" &&
      s.objective != "power") {
    throw std::invalid_argument("rlc::scenario: objective of \"" + s.name +
                                "\" must be delay, noise or power (got \"" +
                                s.objective + "\")");
  }
  if (s.defaults.scenario.empty()) s.defaults.scenario = s.name;
  if (const rlc::Status st = s.defaults.validate(); !st.is_ok()) {
    // Registering broken defaults is a programmer error, not a request
    // error: fail loudly at registration time.
    throw std::invalid_argument("rlc::scenario: defaults of \"" + s.name +
                                "\": " + st.to_string());
  }
  scenarios_.push_back(std::move(s));
}

rlc::StatusOr<const Scenario*> ScenarioRegistry::lookup(
    const std::string& name) const {
  if (const Scenario* s = find(name)) return s;
  return rlc::Status::not_found("unknown scenario \"" + name +
                                "\" (see rlc_run --list)");
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it =
      std::find_if(scenarios_.begin(), scenarios_.end(),
                   [&](const Scenario& s) { return s.name == name; });
  return it == scenarios_.end() ? nullptr : &*it;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.name);
  return out;
}

void register_all_scenarios() {
  static const bool once = [] {
    ScenarioRegistry& r = ScenarioRegistry::global();
    register_paper_scenarios(r);
    register_ring_scenarios(r);
    register_ablation_scenarios(r);
    register_extension_scenarios(r);
    register_xtalk_scenarios(r);
    register_power_scenarios(r);
    register_perf_scenarios(r);
    return true;
  }();
  (void)once;
}

ScenarioSpec quick_spec(ScenarioSpec spec) {
  spec.quick = true;
  if (spec.sweep.explicit_l.empty()) {
    spec.sweep.points = std::min(spec.sweep.points, 7);
  }
  spec.segments_per_line = std::min(spec.segments_per_line, 8);
  return spec;
}

ScenarioResult run_scenario(const Scenario& s, const ScenarioSpec& spec,
                            exec::ThreadPool* pool) {
  if (const rlc::Status st = spec.validate(); !st.is_ok()) {
    throw std::invalid_argument(st.to_string());
  }
  exec::Counters counters;
  ScenarioContext ctx{pool, &counters};
  // Bracket the scenario body with registry/tracer snapshots so the
  // envelope can attribute activity to this run.  Exact when scenarios run
  // one at a time; under --all concurrency the deltas include whatever
  // other scenarios did meanwhile (see Observability doc).
  const bool tracing = obs::Tracer::enabled();
  const obs::MetricsSnapshot metrics_before = obs::Registry::global().snapshot();
  const std::vector<obs::Tracer::SpanStats> spans_before =
      tracing ? obs::Tracer::global().rollup()
              : std::vector<obs::Tracer::SpanStats>{};
  const exec::StopWatch watch;
  ScenarioResult result;
  {
    // The scenario body is itself a span (named after the scenario) so a
    // trace shows where each scenario starts/ends; registry names are
    // stable for the life of the process, satisfying the tracer's
    // pointer-lifetime contract.
    obs::SpanGuard span(s.name.c_str());
    result = s.fn(spec, ctx);
  }
  result.wall_seconds = watch.seconds();
  result.name = s.name;
  result.title = s.title;
  result.spec = spec;
  result.counters = counters.snapshot();
  result.threads = static_cast<int>(ctx.pool_ref().size());
  result.observability.tracing = tracing;
  result.observability.metrics = obs::Registry::global()
                                     .snapshot()
                                     .delta_since(metrics_before)
                                     .without_zeros();
  if (tracing) {
    result.observability.spans =
        rollup_delta(spans_before, obs::Tracer::global().rollup());
    result.observability.dropped_spans = obs::Tracer::global().dropped();
  }
  return result;
}

}  // namespace rlc::scenario
