#pragma once

/// \file registry.hpp
/// Named-scenario registry: every experiment of the repo (paper figures and
/// table, ablations, extensions, perf studies) registers here as a pure
/// function ScenarioSpec -> ScenarioResult, and the single rlc_run driver
/// looks them up by name.  Registration is explicit (register_all_scenarios)
/// rather than via static initializers: the scenario code lives in a static
/// library, and the linker would silently drop self-registering translation
/// units nothing references.

#include <functional>
#include <string>
#include <vector>

#include "rlc/exec/counters.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/scenario/result.hpp"
#include "rlc/scenario/spec.hpp"

namespace rlc::scenario {

/// Execution services handed to a scenario function: the pool its internal
/// sweeps should fan over (never null via pool_ref) and the counters sink
/// the run aggregates into the result envelope.
struct ScenarioContext {
  exec::ThreadPool* pool = nullptr;     ///< null: exec::default_pool()
  exec::Counters* counters = nullptr;   ///< owned by run_scenario

  exec::ThreadPool& pool_ref() const {
    return pool ? *pool : exec::default_pool();
  }
};

/// A scenario body: computes tables/metrics/notes on the result it returns.
/// Must not print, must not touch global state; determinism across thread
/// counts is part of the contract (enforced by tests).
using ScenarioFn =
    std::function<ScenarioResult(const ScenarioSpec&, ScenarioContext&)>;

struct Scenario {
  std::string name;   ///< registry key, also the BENCH_<name>.json stem
  std::string title;  ///< one-line description
  std::string group;  ///< "figure" | "table" | "ablation" | "extension" | "perf"
  ScenarioSpec defaults;  ///< tuned per-scenario default spec
  ScenarioFn fn;
  /// Objective family of the experiment's headline numbers:
  /// "delay" (the paper's tau/h metric), "noise" (crosstalk scenarios),
  /// "power" (power-aware sizing / Pareto sweeps).  Registration rejects
  /// anything else; rlc_run --list shows the column.
  std::string objective = "delay";
};

class ScenarioRegistry {
 public:
  /// The process-wide registry rlc_run and the tests use.
  static ScenarioRegistry& global();

  /// Register a scenario; throws std::invalid_argument on a duplicate name.
  void add(Scenario s);

  /// Lookup by name; nullptr when absent.
  const Scenario* find(const std::string& name) const;

  /// Status-carrying lookup for the public boundary: not_found (with the
  /// offending name) instead of nullptr.  The pointer is owned by the
  /// registry and stable for the life of the process.
  rlc::StatusOr<const Scenario*> lookup(const std::string& name) const;

  /// Registration-order scenario names.
  std::vector<std::string> names() const;

  std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<Scenario> scenarios_;
};

/// Populate the global registry with every experiment.  Idempotent — safe
/// to call from the driver and from each test.
void register_all_scenarios();

/// Shrink a spec for CI smoke runs: quick=true, trimmed sweep grids and
/// ladder sizes.  Scenario bodies additionally consult spec.quick for
/// scenario-specific trims (shorter ring l-lists, fewer timing reps).
ScenarioSpec quick_spec(ScenarioSpec spec);

/// Validate `spec`, run the scenario on `pool` (default pool when null)
/// with fresh counters and a stopwatch, and fill the envelope fields
/// (name, title, spec, counters, wall_seconds, threads) on the result.
/// Exceptions from the body propagate — rlc_run catches them per scenario.
ScenarioResult run_scenario(const Scenario& s, const ScenarioSpec& spec,
                            exec::ThreadPool* pool = nullptr);

// Per-group registration (called by register_all_scenarios; exposed for
// focused tests).
void register_paper_scenarios(ScenarioRegistry& r);
void register_ring_scenarios(ScenarioRegistry& r);
void register_ablation_scenarios(ScenarioRegistry& r);
void register_extension_scenarios(ScenarioRegistry& r);
void register_xtalk_scenarios(ScenarioRegistry& r);
void register_power_scenarios(ScenarioRegistry& r);
void register_perf_scenarios(ScenarioRegistry& r);

}  // namespace rlc::scenario
