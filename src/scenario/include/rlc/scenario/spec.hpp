#pragma once

/// \file spec.hpp
/// Typed experiment request: every figure/table/ablation/extension/perf
/// experiment in the repo is driven by a ScenarioSpec — technology id,
/// inductance-sweep definition, solver/exact-engine/SPICE options, and
/// thresholds — validated up front and round-trippable through JSON.  This
/// is the request half of the request/response shape the scenario registry
/// serves (ScenarioResult is the response half).
///
/// The sweep grid definition lives HERE and only here: the former
/// bench::inductance_sweep helper is SweepSpec{0, 5e-6, n + 1}.values().

#include <string>
#include <vector>

#include "rlc/base/status.hpp"
#include "rlc/core/exact_delay.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/core/technology.hpp"
#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"

namespace rlc::scenario {

/// Display-unit conversion used throughout the experiment tables.
inline double to_nH_per_mm(double l_si) { return l_si * 1e6; }

/// Per-unit-length inductance grid.  Either a uniform grid of `points`
/// values over [l_min, l_max] (the paper's 0..5 nH/mm sweep by default) or
/// an explicit list.  The uniform grid reproduces the legacy
/// bench::inductance_sweep arithmetic bit-for-bit:
/// l_i = l_min + (l_max - l_min) * i / (points - 1).
struct SweepSpec {
  double l_min = 0.0;               ///< [H/m]
  double l_max = 5.0e-6;            ///< [H/m]
  int points = 26;                  ///< grid size (>= 1)
  std::vector<double> explicit_l;   ///< non-empty: overrides the grid

  /// The grid; throws std::invalid_argument when the spec is invalid
  /// (callers that want a typed error validate() first).
  std::vector<double> values() const;

  /// OK or invalid_argument with the first violated constraint.  Part of
  /// the redesigned Status boundary: spec validation REPORTS rather than
  /// throws, so serving front-ends can reject requests without unwinding.
  rlc::Status validate() const;

  bool operator==(const SweepSpec&) const = default;
};

/// One experiment request.  Defaults reproduce the legacy bench behaviour;
/// each registered scenario carries its own tuned defaults.
struct ScenarioSpec {
  std::string scenario;              ///< registered scenario name
  std::string technology = "100nm";  ///< see technology_by_name (scenarios
                                     ///< spanning fixed node sets ignore it)
  SweepSpec sweep{};
  double threshold = 0.5;      ///< delay threshold fraction, in (0, 1)
  int segments_per_line = 12;  ///< pi-ladder segments for SPICE experiments
  int ring_stages = 5;         ///< ring-oscillator stages (odd)
  bool quick = false;          ///< reduced grids for CI smoke runs
  bool parallel = true;        ///< fan sweeps over the rlc::exec pool
  int max_newton_iterations = 80;
  double residual_tol = 1e-9;
  int talbot_points = 48;      ///< exact-engine contour size

  /// OK or invalid_argument with the first violated constraint.
  rlc::Status validate() const;

  /// Solver options implied by this spec (legacy benches used the same
  /// defaults, so default-spec scenarios match them bit-for-bit).
  core::OptimOptions optim_options() const;
  core::ExactOptions exact_options() const;

  io::Json to_json() const;

  /// Parse + validate.  invalid_argument covers both malformed JSON shapes
  /// and out-of-domain values; no exception escapes (boundary rule,
  /// DESIGN.md "Errors").
  static rlc::StatusOr<ScenarioSpec> from_json(const io::JsonValue& v);
  static rlc::StatusOr<ScenarioSpec> from_json_text(const std::string& text);

  bool operator==(const ScenarioSpec&) const = default;
};

/// Resolve a technology id: "250nm"/"250", "100nm"/"100",
/// "100nm_c250" (the Figure 7 control: 100 nm with the 250 nm dielectric),
/// or "<N>nm" / a bare number for the interpolated node (e.g. "180nm").
/// Throws std::invalid_argument for anything else.
core::Technology technology_by_name(const std::string& name);

}  // namespace rlc::scenario
