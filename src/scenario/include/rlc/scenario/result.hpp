#pragma once

/// \file result.hpp
/// Structured experiment output.  Scenario functions never print — they
/// return a ScenarioResult (tables, scalar metrics, notes, solver counters,
/// wall time), which the rlc_run driver renders as human tables via the
/// bench formatters and serializes as a schema-versioned BENCH_<name>.json
/// artifact.  Separating production from presentation is what lets
/// independent scenarios run concurrently without interleaving output.

#include <string>
#include <vector>

#include "rlc/exec/counters.hpp"
#include "rlc/io/json.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/scenario/spec.hpp"

namespace rlc::scenario {

/// Version of the BENCH_<name>.json envelope written by
/// ScenarioResult::to_json.  History: 1 was the ad-hoc perf-bench format,
/// 2 added the scenario envelope, 3 added the `observability` block
/// (metrics snapshot + span rollup), 4 added the library `version` stamp
/// (every artifact and every rlc_serve response carries rlc::version()),
/// 5 added the `simd` field ("avx2" | "scalar" — the kernel level the
/// process resolved at startup from cpuid + RLC_SIMD), 6 added the
/// optional `coupling` block (multi-conductor scenarios: bus width,
/// coupling strengths and headline noise metrics), 7 added the
/// `telemetry` block (exporter-derived stats over the run's metrics
/// delta: Prometheus series/byte counts plus tracer ring configuration).
inline constexpr int kSchemaVersion = 7;

/// One table cell: a number or a short text label (e.g. "-" for a
/// non-converged point, a technology name in a key column).
struct Value {
  enum Kind { kNumber, kText };
  Kind kind = kNumber;
  double number = 0.0;
  std::string text;

  Value(double v) : number(v) {}                     // NOLINT(runtime/explicit)
  Value(int v) : number(v) {}                        // NOLINT(runtime/explicit)
  Value(long long v)                                 // NOLINT(runtime/explicit)
      : number(static_cast<double>(v)) {}
  Value(const char* v) : kind(kText), text(v) {}     // NOLINT(runtime/explicit)
  Value(std::string v)                               // NOLINT(runtime/explicit)
      : kind(kText), text(std::move(v)) {}
};

/// A rectangular table: named columns, rows of Values.
struct Table {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  Table() = default;
  Table(std::string title_, std::vector<std::string> columns_)
      : title(std::move(title_)), columns(std::move(columns_)) {}

  /// Append a row; throws std::invalid_argument on a width mismatch.
  Table& row(std::vector<Value> cells);

  io::Json to_json() const;
};

/// A named scalar result (max error, fitted exponent, speedup, ...).
struct Metric {
  std::string name;
  double value = 0.0;
};

/// What the obs layer saw during one scenario run: the registry delta
/// bracketing the scenario body plus the tracer's span rollup over the
/// same bracket.  Attribution is exact when scenarios run one at a time
/// (--serial, --spec, or a single name); under --all concurrency the
/// registry and tracer are process-wide, so concurrently running
/// scenarios bleed into each other's deltas — the numbers remain correct
/// in aggregate, just not per-scenario-exclusive.
struct Observability {
  obs::MetricsSnapshot metrics;            ///< delta, zero entries dropped
  std::vector<obs::Tracer::SpanStats> spans;  ///< rollup delta by name
  std::uint64_t dropped_spans = 0;
  bool tracing = false;  ///< tracer was enabled during the run

  /// {"tracing": b, "dropped_spans": n, "metrics": {...},
  ///  "spans": {name: {count, total_ns, top_level_ns}}}
  io::Json to_json() const;
};

/// Coupled-bus summary of a multi-conductor scenario (schema >= 6).  A
/// scenario that models coupling fills this; n_conductors == 0 (the
/// default) means "no coupling block" and the envelope omits it, so
/// single-line artifacts are byte-compatible with schema 5 modulo the
/// version bump.
struct CouplingInfo {
  int n_conductors = 0;      ///< bus width; 0: scenario has no coupling
  double cc = 0.0;           ///< representative coupling cap [F/m]
  double km = 0.0;           ///< representative inductive coefficient
  double peak_noise = 0.0;   ///< worst victim peak noise of the run [V]
  double noise_width = 0.0;  ///< its half-magnitude pulse width [s]

  io::Json to_json() const;
};

/// Everything one scenario run produced.
struct ScenarioResult {
  std::string name;   ///< scenario name (registry key)
  std::string title;  ///< one-line description for banners
  ScenarioSpec spec;  ///< the spec the run actually used
  std::vector<Table> tables;
  std::vector<Metric> metrics;
  std::vector<std::string> notes;
  exec::Counters::Snapshot counters;
  Observability observability;
  CouplingInfo coupling;  ///< filled by multi-conductor scenarios
  double wall_seconds = 0.0;
  int threads = 1;     ///< pool size the run saw
  std::string error;   ///< non-empty: the scenario threw; everything else
                       ///< except name/spec is unspecified

  void metric(std::string n, double v) {
    metrics.push_back({std::move(n), v});
  }
  void note(std::string text) { notes.push_back(std::move(text)); }

  /// The versioned artifact envelope (see README "Machine-readable
  /// artifacts"): schema, version, bench, title, quick, threads, simd,
  /// wall_seconds, spec{...}, counters{...}, observability{...},
  /// tables[...], metrics{...}, notes[...], and `error` when the run
  /// failed.
  io::Json to_json() const;

  /// Order-sensitive digest of every numeric cell and metric — equal
  /// fingerprints mean bit-identical numbers.  Used by the determinism
  /// tests (--threads 1 vs N) and the legacy-equivalence checks.
  /// Deliberately excludes observability (counts vary with thread count
  /// and tracing; the physics must not).
  std::string numeric_fingerprint() const;
};

}  // namespace rlc::scenario
