#pragma once

/// \file serve.hpp
/// Transport-agnostic NDJSON request framing over a Session.  bench/
/// rlc_serve plugs this into stdin/stdout or a Unix socket; tests drive it
/// directly with strings.
///
/// Wire format (one JSON object per line, one response line per request
/// line, always in input order):
///
///   request:  {"op": "query" | "scenario" | "ping",
///              "id": <number | string, optional, echoed back>,
///              ... op-specific fields ...}
///     query:    the QueryRequest fields (technology, l, threshold, ...)
///     scenario: {"spec": {...ScenarioSpec...}, "deadline_seconds": s?}
///     ping:     no extra fields
///
///   response: {"schema": kServeSchemaVersion, "version": rlc::version(),
///              "id": ...?, "status": "<code name>", "code": <int>,
///              "result": {...}}        on success
///             {..., "message": "..."}  on error (no "result")
///
/// Malformed lines (bad JSON, missing/unknown op) get an invalid_argument
/// response line — the stream stays aligned, one line in, one line out.

#include <string>
#include <vector>

#include "rlc/svc/session.hpp"

namespace rlc::svc {

/// Response-envelope schema version (independent of the BENCH_*.json
/// scenario envelope schema).  History: 1 initial.
inline constexpr int kServeSchemaVersion = 1;

struct ServeOptions {
  /// Max request lines executed as one submit_batch by handle_lines.
  int max_batch = 64;
};

class Server {
 public:
  explicit Server(Session& session, const ServeOptions& opts = {});

  /// One request line -> one response line (no trailing newline).
  /// Never throws; protocol errors become error responses.
  std::string handle_line(const std::string& line);

  /// A block of lines -> responses in input order.  "query" requests in
  /// the block are answered through ONE submit_batch (sharded over the
  /// session pool, at most max_batch per call); other ops run in place.
  std::vector<std::string> handle_lines(const std::vector<std::string>& lines);

  Session& session() { return session_; }

 private:
  Session& session_;
  ServeOptions opts_;
};

}  // namespace rlc::svc
