#pragma once

/// \file router.hpp
/// ShardRouter — the front router of the scaled-out query service: N
/// Session shards (each with its own warm ThreadPool, Talbot scratch, and
/// LRU result cache), with query keys consistent-hashed onto shards.
///
/// Routing is by Jump Consistent Hash over QueryRequest::cache_hash(), so
///   * the same query key always lands on the same shard — its cache entry
///     and warm per-thread solver state are reused instead of duplicated
///     S times (a modulo router would also do this, but);
///   * growing S to S+1 remaps only ~1/(S+1) of the key space, so a
///     resized deployment keeps most of its warm caches.
///
/// The mapping is a pure function of (key hash, shard count): identical
/// across router instances, processes, and runs — pinned by
/// tests/svc/test_router.cpp.
///
/// submit_batch partitions a batch by shard and runs the per-shard
/// sub-batches concurrently (each on its own shard's pool), returning
/// results in input order with the same bit-identical-to-serial guarantee
/// Session::submit_batch gives.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "rlc/base/status.hpp"
#include "rlc/svc/query.hpp"
#include "rlc/svc/session.hpp"

namespace rlc::svc {

struct RouterOptions {
  /// Number of Session shards (>= 1; 0 is promoted to 1).
  std::size_t shards = 1;
  /// Worker threads per shard pool; 0 picks exec::default_thread_count().
  std::size_t threads_per_shard = 0;
  /// Result-cache capacity PER SHARD in entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
};

class ShardRouter {
 public:
  explicit ShardRouter(const RouterOptions& opts = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t shards() const noexcept { return sessions_.size(); }

  /// Serving concurrency: sum of the shard pool sizes.
  std::size_t threads() const;

  /// The shard this request's cache key lands on, in [0, shards()).
  std::size_t shard_of(const QueryRequest& req) const;

  /// The raw placement function (Jump Consistent Hash).  Deterministic in
  /// (key_hash, shards) alone; exposed for the routing-stability tests.
  static std::size_t placement(std::uint64_t key_hash, std::size_t shards);

  Session& shard(std::size_t i) { return *sessions_[i]; }
  const Session& shard(std::size_t i) const { return *sessions_[i]; }

  /// Answer one query on its home shard, on the calling thread.
  rlc::StatusOr<QueryResult> submit(const QueryRequest& req);

  /// Answer a batch: partition by home shard, run every non-empty shard's
  /// sub-batch concurrently, reassemble in input order.  Bit-identical to
  /// routing each request through submit() serially, for any shard count
  /// and any per-shard thread count.
  std::vector<rlc::StatusOr<QueryResult>> submit_batch(
      const std::vector<QueryRequest>& reqs);

 private:
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace rlc::svc
