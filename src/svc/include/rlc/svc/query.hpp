#pragma once

/// \file query.hpp
/// The unit of traffic of the rlc::svc query service: one parametric
/// optimizer lookup (technology, inductance, threshold) -> (h_opt, k_opt,
/// delay), exactly the small repeated query a signal-integrity flow issues
/// by the thousands (paper Section 4; DesignCon-style SI optimization
/// loops).  Requests validate to a typed Status, round-trip through JSON
/// (the rlc_serve wire format), and hash to a canonical content-addressed
/// cache key.

#include <cstdint>
#include <limits>
#include <string>

#include "rlc/base/status.hpp"
#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"

namespace rlc::svc {

/// One optimizer query.  Field names and defaults deliberately mirror
/// core::OptimOptions / ScenarioSpec (post options-hygiene spellings).
struct QueryRequest {
  std::string technology = "100nm";  ///< see scenario::technology_by_name
  double l = 0.0;                    ///< per-unit-length inductance [H/m]
  double threshold = 0.5;            ///< delay threshold fraction, in (0, 1)
  int max_iterations = 80;           ///< Newton budget of the (h, k) solve
  double residual_tolerance = 1e-9;
  bool with_exact_delay = false;  ///< also run the exact-waveform engine
  int talbot_points = 48;         ///< exact-engine contour size
  double line_length = 0.0;       ///< >0: also report L/h * tau over L [m]

  /// Coupled-bus extension (schema-transparent: the defaults reproduce the
  /// single-line query bit-for-bit).  n_conductors >= 2 sizes a symmetric
  /// bus of identical wires: the optimizer works on the quiet-neighbour
  /// effective line and the answer carries the exact victim noise at the
  /// optimum; noise_vmax > 0 additionally routes through the
  /// noise-constrained active-set solve (peak_noise <= noise_vmax).
  int n_conductors = 1;      ///< 1 (scalar), 2 or 3
  double coupling_cc = 0.0;  ///< line-to-line capacitance [F/m], >= 0
  double coupling_km = 0.0;  ///< inductive coupling coefficient, |km| < 1
  double noise_vmax = 0.0;   ///< >0: peak-noise budget [V] (needs n >= 2)

  /// Objective extension (schema-transparent: an omitted/default objective
  /// serializes, hashes and answers byte-identically to the pre-objective
  /// scalar wire).  "power" minimizes total chain power subject to
  /// delay <= (1 + delay_slack_eps) * T_opt (core::optimize, objective
  /// kPower); any other non-default string is a typed invalid_argument —
  /// never a silent fallback to "delay".  Requires n_conductors == 1.
  std::string objective = "delay";  ///< "delay" | "power"
  /// Power-objective delay slack (>= 0; infinity = unconstrained).  Only
  /// meaningful — and only on the wire / in the cache key — with
  /// objective "power".
  double delay_slack_eps = kDefaultDelaySlackEps;

  static constexpr double kDefaultDelaySlackEps = 0.05;

  /// Per-request latency budget in seconds, measured from the moment the
  /// service picks the request up.  Infinity (the default) means no
  /// deadline; 0 is an already-expired budget and comes back
  /// deadline_exceeded without starting any work.
  double deadline_seconds = std::numeric_limits<double>::infinity();

  /// Optional client-supplied trace id (<= kMaxTraceIdLength chars).  Empty
  /// (the default) means untraced: the response is byte-identical to the
  /// pre-tracing wire format.  Non-empty echoes the id on the result along
  /// with per-stage timings (queue/cache/solve) and makes the request
  /// eligible for the slow-query log.  Excluded from cache_key(): a trace
  /// id changes what is reported about the answer, never the answer.
  std::string trace_id;

  static constexpr std::size_t kMaxTraceIdLength = 128;

  /// OK or invalid_argument naming the first bad field.
  rlc::Status validate() const;

  /// Canonical content-addressed key: every RESULT-AFFECTING field, fixed
  /// order, exact double bits (%.17g).  deadline_seconds is excluded — a
  /// deadline changes whether you get an answer, never which answer.
  std::string cache_key() const;

  /// FNV-1a 64 of cache_key(), for logs/metrics shards.
  std::uint64_t cache_hash() const;

  io::Json to_json() const;

  /// Parse from a request object (unknown keys ignored, missing keys take
  /// the defaults above), then validate.  Never throws.
  static rlc::StatusOr<QueryRequest> from_json(const io::JsonValue& v);

  bool operator==(const QueryRequest&) const = default;
};

/// Everything one query produced.  Numeric fields are bit-identical for a
/// given request whether computed serially, in a batch on any thread
/// count, or replayed from the cache (pinned by tests/svc).
struct QueryResult {
  double h = 0.0;                 ///< optimal segment length [m]
  double k = 0.0;                 ///< optimal repeater size
  double tau = 0.0;               ///< threshold delay of one segment [s]
  double delay_per_length = 0.0;  ///< tau / h [s/m]
  double total_delay = 0.0;       ///< line_length > 0: delay_per_length * L
  double exact_delay = 0.0;       ///< exact-waveform segment delay [s]
  bool has_exact = false;         ///< exact_delay is meaningful
  double peak_noise = 0.0;        ///< exact victim peak noise [V]
  double noise_width = 0.0;       ///< its half-magnitude width [s]
  bool constraint_active = false; ///< noise_vmax bound the (h, k) answer
  bool has_noise = false;         ///< the noise fields are meaningful

  /// Power block, populated (and serialized) only for objective "power" —
  /// default-objective responses keep the pre-power wire shape byte-for-
  /// byte.  All power figures are chain power per unit length [W/m].
  double power_total = 0.0;          ///< total at the answer
  double power_dynamic = 0.0;        ///< C V^2 f component
  double power_short_circuit = 0.0;  ///< crowbar component
  double power_leakage = 0.0;        ///< subthreshold component
  double delay_ref = 0.0;            ///< delay-optimal T_opt [s/m]
  double power_ref = 0.0;            ///< power at the delay optimum [W/m]
  bool power_constraint_active = false;  ///< the slack bound the answer
  bool has_power = false;            ///< the power fields are meaningful
  int newton_iterations = 0;
  std::string method;       ///< "newton" | "nelder_mead"
  bool from_cache = false;  ///< served from the session result cache
  double wall_seconds = 0.0;  ///< compute time of THIS call (~0 on a hit)

  /// Tracing block, populated (and serialized) only when the request
  /// carried a trace_id — old clients see byte-identical responses.
  std::string trace_id;   ///< echoed from the request
  double queue_us = 0.0;  ///< receive -> session pickup (0 for direct calls)
  double cache_us = 0.0;  ///< result-cache lookup time
  double solve_us = 0.0;  ///< engine time (0 on a cache hit)

  io::Json to_json() const;

  /// Equality over the numeric payload only (from_cache / wall_seconds are
  /// delivery metadata, not part of the answer).
  bool same_answer(const QueryResult& o) const;
};

}  // namespace rlc::svc
