#pragma once

/// \file cache.hpp
/// Content-addressed LRU result cache of the query service.  Keys are
/// canonical request strings (QueryRequest::cache_key) so two requests that
/// produce the same answer by construction share one entry regardless of
/// field order or delivery options.  A plain mutex protects the map+list:
/// entries are small (one QueryResult), lookups are ~100 ns against solves
/// of ~100 us, so lock contention is noise even at full batch fan-out.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace rlc::svc {

/// Thread-safe LRU map string -> V.  capacity 0 disables storage entirely
/// (every get misses, every put is dropped) — "caching off" needs no
/// special-casing in the session.
template <typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };

  /// Copy-out lookup; refreshes recency on a hit.
  std::optional<V> get(const std::string& key) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert or refresh; evicts the least-recently-used entry past capacity.
  void put(const std::string& key, V value) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mutex_);
    index_.clear();
    order_.clear();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return Stats{hits_, misses_, evictions_, index_.size(), capacity_};
  }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<std::pair<std::string, V>> order_;  // front = most recent
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, V>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rlc::svc
