#pragma once

/// \file server.hpp
/// EventLoopServer — the async multi-client serving front end of the query
/// service: a single-threaded epoll event loop (nonblocking accept / read /
/// write, per-connection NDJSON framing buffers) in front of a ShardRouter
/// whose per-shard dispatcher threads execute queries on the shards' warm
/// pools.
///
/// Concurrency model:
///   * the LOOP THREAD owns every connection: framing, response ordering,
///     write buffering, backpressure.  It never solves anything — cheap ops
///     (ping, malformed lines) are answered inline, queries and scenarios
///     are handed to a shard;
///   * one DISPATCHER THREAD per shard drains that shard's task queue in
///     batches of up to max_batch and runs them as one Session::submit_batch
///     on the shard's own ThreadPool (so a burst from one client still
///     parallelizes, and distinct keys fan out across shards);
///   * completions travel back over a mutex-guarded queue + eventfd wakeup;
///     the loop thread re-sequences them per connection, so every client
///     sees its responses in ITS request order no matter which shard or
///     thread answered (pinned by tests/svc/test_server.cpp).
///
/// Robustness contract (the fault-injection suite pins each point):
///   * partial reads/writes at any byte boundary are normal operation;
///   * a slow or stalled client never blocks the loop or other clients;
///   * a client whose responses back up past write_high_watermark stops
///     being read (backpressure) until its buffer drains below
///     write_low_watermark — memory stays bounded per connection;
///   * half-close (shutdown(SHUT_WR)) serves every buffered line, plus an
///     unterminated trailing line, before the server closes its side;
///   * request_drain() (async-signal-safe; wire it to SIGTERM) stops
///     accepting and reading, completes every in-flight request, flushes,
///     then returns from serve().
///
/// Platform: the event loop is Linux-only (epoll + eventfd).  On other
/// platforms listen_unix()/serve() return an internal error and the stdin
/// front end (serve.hpp) remains available.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "rlc/base/status.hpp"
#include "rlc/svc/router.hpp"

namespace rlc::svc {

struct ServerOptions {
  /// Session shards behind the router (>= 1; 0 is promoted to 1).
  std::size_t shards = 1;
  /// Worker threads per shard pool; 0 picks exec::default_thread_count().
  std::size_t threads_per_shard = 0;
  /// Result-cache capacity per shard in entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Max requests one shard dispatch executes as one submit_batch.
  int max_batch = 64;
  /// listen(2) backlog (the old transport hardcoded 8, which drops
  /// connection bursts on the floor).
  int listen_backlog = 128;
  /// Pause reading a connection whose pending response bytes exceed this.
  std::size_t write_high_watermark = std::size_t{4} << 20;
  /// Resume reading once the pending response bytes fall below this.
  std::size_t write_low_watermark = std::size_t{512} << 10;
  /// A request line longer than this is answered with invalid_argument and
  /// the connection is closed (framing can no longer be trusted).
  std::size_t max_line_bytes = std::size_t{1} << 20;
};

class EventLoopServer {
 public:
  explicit EventLoopServer(const ServerOptions& opts = {});
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Bind + listen on a Unix-domain socket path (an existing socket file at
  /// `path` is replaced).  Call once, before serve().
  rlc::Status listen_unix(const std::string& path);

  /// Run the event loop on the calling thread.  Returns OK after a
  /// request_drain() completed (all in-flight requests answered, buffers
  /// flushed, connections closed), or an error if setup failed.
  rlc::Status serve();

  /// Begin graceful drain: stop accepting and reading, finish in-flight
  /// work, flush, make serve() return.  Async-signal-safe (one eventfd
  /// write) — safe to call from a SIGTERM handler or any thread.  Idempotent.
  void request_drain() noexcept;

  /// The shard router (sessions stay warm for the server's lifetime).
  ShardRouter& router();
  const ShardRouter& router() const;

  /// Serving concurrency reported by ping: sum of shard pool sizes.
  std::size_t threads() const;

  /// Counters readable from any thread while serving.  All fields are
  /// monotonic except connections_open, which is a level gauge
  /// (accepted - closed at the moment of the read).
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t connections_open = 0;  ///< gauge: currently connected
    std::uint64_t requests = 0;          ///< lines parsed into requests
    std::uint64_t responses = 0;         ///< response lines fully written
    std::uint64_t reads_paused = 0;      ///< backpressure engagements
    std::uint64_t oversized_lines = 0;   ///< lines over max_line_bytes
    std::uint64_t bytes_in = 0;          ///< request bytes read off sockets
    std::uint64_t bytes_out = 0;         ///< response bytes written
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlc::svc
