#pragma once

/// \file slowlog.hpp
/// Worst-N slow-query log for the serving plane.
///
/// Every request that carries a trace_id is offered to the log with its
/// per-stage timings (queue -> cache lookup -> solve); the log keeps the
/// kCapacity worst by total time, so a scrape of the admin {"op":"stats"}
/// endpoint can attribute tail latency to queueing vs. cache misses vs.
/// solver time without any per-request I/O.  Untraced traffic never
/// touches the log — sampling is the client's choice of which requests to
/// stamp with a trace_id.
///
/// Concurrency: admissions take a mutex (traced requests are the sampled
/// minority), but a relaxed atomic floor of the current worst set lets a
/// full log reject fast entries without the lock.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rlc/io/json.hpp"

namespace rlc::svc {

class SlowQueryLog {
 public:
  /// The process-wide log the Session records into and the admin stats op
  /// reads from.
  static SlowQueryLog& global();

  SlowQueryLog() = default;
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  struct Entry {
    std::string trace_id;
    std::string technology;
    std::uint64_t cache_hash = 0;  ///< FNV-1a of the request cache key
    bool from_cache = false;
    std::string status;     ///< "ok" or the Status code name
    double queue_us = 0.0;  ///< receive -> session pickup
    double cache_us = 0.0;  ///< result-cache lookup
    double solve_us = 0.0;  ///< engine time (0 on a hit)
    double total_us = 0.0;  ///< queue + cache + solve
  };

  /// Offer one traced request; kept only while it ranks among the
  /// kCapacity worst by total_us.
  void note(Entry e);

  /// The current worst set, total_us descending.
  std::vector<Entry> worst() const;

  /// {"recorded": n, "entries": [...worst-first...]} for the admin op.
  io::Json to_json() const;

  /// Total admissions offered since start/clear (including ones that did
  /// not rank).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  void clear();

  static constexpr std::size_t kCapacity = 32;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  ///< sorted total_us descending
  std::atomic<double> floor_us_{0.0};  ///< min total_us once full
  std::atomic<std::uint64_t> recorded_{0};
};

}  // namespace rlc::svc
