#pragma once

/// \file session.hpp
/// rlc::svc::Session — the warm, reusable entry point of the query service
/// and the centre of this repo's redesigned public API.
///
/// A Session owns:
///   * its own exec::ThreadPool, kept alive across requests so the
///     thread-local Talbot contour bases and transfer-evaluator scratch the
///     exact-waveform engine builds on first use stay WARM for every
///     subsequent query on the same worker;
///   * a content-addressed LRU result cache keyed on the canonical request
///     string (QueryRequest::cache_key) — identical queries are answered
///     without re-solving;
///   * the svc.* metrics (queue depth, batch size, cache hit rate, latency
///     histogram with p50/p99, deadline/cancel counts), exported through
///     the process-wide rlc::obs registry.
///
/// Error contract (DESIGN.md "Errors"): every submit returns
/// StatusOr<QueryResult>; no exception crosses this boundary.  Deadlines
/// and cancellation are honored cooperatively: each request-task installs
/// an ExecScope on its worker thread, and the Newton/Brent/Talbot loops
/// checkpoint at iteration boundaries.  A request whose deadline is
/// already expired (deadline_seconds == 0) returns deadline_exceeded
/// before touching the cache or the solver — no partial work, no cache
/// write.
///
/// Determinism: a QueryResult's numeric payload depends only on the
/// request (each solve is single-seeded and self-contained), so
/// submit_batch is bit-identical to serial submit calls for any thread
/// count — pinned by tests/svc.

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "rlc/base/cancel.hpp"
#include "rlc/base/status.hpp"
#include "rlc/exec/thread_pool.hpp"
#include "rlc/scenario/result.hpp"
#include "rlc/scenario/spec.hpp"
#include "rlc/svc/cache.hpp"
#include "rlc/svc/query.hpp"

namespace rlc::svc {

struct SessionOptions {
  /// Worker threads of the session pool; 0 picks
  /// exec::default_thread_count() (RLC_NUM_THREADS-aware).
  std::size_t threads = 0;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
};

class Session {
 public:
  explicit Session(const SessionOptions& opts = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Answer one query on the calling thread (cache -> solve -> cache).
  rlc::StatusOr<QueryResult> submit(const QueryRequest& req);

  /// Same, additionally observing an external cancellation token (combined
  /// with the request's own deadline).
  rlc::StatusOr<QueryResult> submit(const QueryRequest& req,
                                    const CancelToken& cancel);

  /// Answer a batch, sharded over the session pool (grain 1 — each request
  /// is one task).  Same-key requests are grouped first: the earliest
  /// occurrence of each cache key solves in a leader pass (its cold miss
  /// pays the batched SoA contour sweeps once per distinct line), then the
  /// duplicates resolve from the freshly filled cache — deterministic for
  /// any thread count because grouping follows request order.  Results are
  /// in input order; each element carries its own Status, so one bad
  /// request never poisons its neighbours.  The token cancels every
  /// not-yet-finished request in the batch.
  std::vector<rlc::StatusOr<QueryResult>> submit_batch(
      const std::vector<QueryRequest>& reqs);
  std::vector<rlc::StatusOr<QueryResult>> submit_batch(
      const std::vector<QueryRequest>& reqs, const CancelToken& cancel);

  /// Batch submit with per-request receive timestamps (obs::Tracer::now_ns
  /// clock; 0 or an empty vector means unknown).  The gap between a
  /// request's receive stamp and its pickup on a worker is attributed as
  /// queue time in the per-stage tracing (query.hpp trace block) — the
  /// event-loop server stamps requests as they are framed off the wire.
  std::vector<rlc::StatusOr<QueryResult>> submit_batch(
      const std::vector<QueryRequest>& reqs, const CancelToken& cancel,
      const std::vector<std::int64_t>& received_ns);

  /// Run a full registered scenario on the session pool (the rlc_serve
  /// "scenario" op).  Uncached — scenario envelopes carry wall-clock and
  /// counter fields that are not content-addressable.  The deadline (in
  /// seconds, infinity = none) and token propagate into the scenario's
  /// internal sweeps via the pool's scope inheritance.
  rlc::StatusOr<scenario::ScenarioResult> run_scenario(
      const scenario::ScenarioSpec& spec,
      double deadline_seconds = kNoDeadline,
      const CancelToken& cancel = {});

  std::size_t threads() const;
  exec::ThreadPool& pool();

  LruCache<QueryResult>::Stats cache_stats() const;
  void clear_cache();

  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlc::svc
