#include "rlc/svc/server.hpp"

#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rlc/obs/trace.hpp"
#include "wire.hpp"

#if defined(__linux__)

#include <condition_variable>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace rlc::svc {

namespace {

// epoll_event.data.u64 tags.  Connection ids start above the sentinels.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

rlc::Status errno_status(const char* what) {
  return rlc::Status::internal(std::string(what) + ": " +
                               std::strerror(errno));
}

}  // namespace

struct EventLoopServer::Impl {
  explicit Impl(const ServerOptions& o)
      : opts(o),
        router([&] {
          RouterOptions r;
          r.shards = o.shards;
          r.threads_per_shard = o.threads_per_shard;
          r.cache_capacity = o.cache_capacity;
          return r;
        }()) {
    if (opts.max_batch <= 0) opts.max_batch = 1;
    if (opts.listen_backlog <= 0) opts.listen_backlog = 1;
    if (opts.write_low_watermark > opts.write_high_watermark) {
      opts.write_low_watermark = opts.write_high_watermark;
    }
  }

  ~Impl() {
    if (listener_fd >= 0) ::close(listener_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    const int wfd = wake_fd.load(std::memory_order_acquire);
    if (wfd >= 0) ::close(wfd);
  }

  // ---- state owned by the loop thread ----------------------------------

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string rbuf;          // unparsed request bytes
    std::string wbuf;          // rendered response bytes not yet sent
    std::size_t woff = 0;      // bytes of wbuf already sent
    std::uint64_t next_seq = 0;    // sequence for the next parsed request
    std::uint64_t next_flush = 0;  // sequence the client must see next
    std::map<std::uint64_t, std::string> ready;  // out-of-order completions
    std::size_t inflight = 0;  // requests dispatched, completion pending
    std::uint32_t events = EPOLLIN;  // current epoll interest set
    bool reads_paused = false;       // backpressure engaged
    bool read_closed = false;        // EOF seen (client half-closed)
    bool closing = false;            // close once drained + flushed
  };

  ServerOptions opts;
  ShardRouter router;

  int epoll_fd = -1;
  int listener_fd = -1;
  // Atomic: written by the loop thread at serve() setup, read by
  // request_drain() from any thread (including a signal handler).
  std::atomic<int> wake_fd{-1};
  bool listener_open = false;
  bool draining = false;

  std::uint64_t next_conn_id = kFirstConnId;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::size_t scenario_rr = 0;  // round-robin shard for scenario requests

  // ---- loop <-> dispatcher plumbing ------------------------------------

  struct ShardTask {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::int64_t received_ns = 0;  ///< Tracer::now_ns at framing time
    wire::Parsed parsed;
  };

  struct ShardQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<ShardTask> tasks;
    bool stop = false;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string line;
  };

  std::vector<std::unique_ptr<ShardQueue>> queues;
  std::vector<std::thread> dispatchers;

  std::mutex comp_mu;
  std::vector<Completion> completions;

  std::atomic<bool> drain_requested{false};

  std::atomic<std::uint64_t> st_accepted{0};
  std::atomic<std::uint64_t> st_closed{0};
  std::atomic<std::uint64_t> st_requests{0};
  std::atomic<std::uint64_t> st_responses{0};
  std::atomic<std::uint64_t> st_paused{0};
  std::atomic<std::uint64_t> st_oversized{0};
  std::atomic<std::uint64_t> st_bytes_in{0};
  std::atomic<std::uint64_t> st_bytes_out{0};

  // ---- setup -----------------------------------------------------------

  rlc::Status listen_unix(const std::string& path) {
    if (listener_fd >= 0) {
      return rlc::Status::invalid_argument("listen_unix called twice");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      return rlc::Status::invalid_argument("socket path empty or too long: " +
                                           path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return errno_status("socket");
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      rlc::Status st = errno_status(("bind " + path).c_str());
      ::close(fd);
      return st;
    }
    if (::listen(fd, opts.listen_backlog) < 0) {
      rlc::Status st = errno_status("listen");
      ::close(fd);
      return st;
    }
    listener_fd = fd;
    return rlc::Status::ok();
  }

  void request_drain() noexcept {
    // Async-signal-safe: one relaxed store + one write(2).
    drain_requested.store(true, std::memory_order_relaxed);
    // Acquire pairs with the release store in serve(): it publishes the
    // eventfd's creation to this thread before the write(2) below.
    const int wfd = wake_fd.load(std::memory_order_acquire);
    if (wfd >= 0) {
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wfd, &one, sizeof(one));
    }
  }

  // ---- dispatcher threads ----------------------------------------------

  void dispatcher_main(std::size_t shard_idx) {
    ShardQueue& q = *queues[shard_idx];
    Session& session = router.shard(shard_idx);
    const std::size_t max_batch = static_cast<std::size_t>(opts.max_batch);
    std::vector<ShardTask> taken;
    for (;;) {
      taken.clear();
      {
        std::unique_lock<std::mutex> lk(q.mu);
        q.cv.wait(lk, [&] { return q.stop || !q.tasks.empty(); });
        if (q.tasks.empty()) return;  // stop && drained
        while (!q.tasks.empty() && taken.size() < max_batch) {
          taken.push_back(std::move(q.tasks.front()));
          q.tasks.pop_front();
        }
      }

      std::vector<Completion> done(taken.size());
      for (std::size_t i = 0; i < taken.size(); ++i) {
        done[i].conn_id = taken[i].conn_id;
        done[i].seq = taken[i].seq;
      }

      // Queries in this take run as one batch on the shard's pool; anything
      // else (scenarios, and errors routed here defensively) runs in place.
      std::vector<std::size_t> qidx;
      for (std::size_t i = 0; i < taken.size(); ++i) {
        if (taken[i].parsed.op == wire::Parsed::Op::kQuery) {
          qidx.push_back(i);
        } else {
          done[i].line = wire::execute_and_render(session, taken[i].parsed,
                                                  router.threads());
        }
      }
      if (!qidx.empty()) {
        std::vector<QueryRequest> reqs;
        std::vector<std::int64_t> received;
        reqs.reserve(qidx.size());
        received.reserve(qidx.size());
        for (std::size_t i : qidx) {
          reqs.push_back(taken[i].parsed.query);
          received.push_back(taken[i].received_ns);
        }
        std::vector<rlc::StatusOr<QueryResult>> results =
            session.submit_batch(reqs, CancelToken{}, received);
        for (std::size_t k = 0; k < qidx.size(); ++k) {
          const wire::Parsed& p = taken[qidx[k]].parsed;
          const rlc::StatusOr<QueryResult>& r = results[k];
          done[qidx[k]].line = r.is_ok()
                                   ? wire::render_ok(p.id, r->to_json())
                                   : wire::render_error(p.id, r.status());
        }
      }

      {
        std::lock_guard<std::mutex> lk(comp_mu);
        for (Completion& c : done) completions.push_back(std::move(c));
      }
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(
          wake_fd.load(std::memory_order_acquire), &one, sizeof(one));
    }
  }

  // ---- loop-thread helpers ---------------------------------------------

  void epoll_set(Conn& c, std::uint32_t events) {
    if (c.events == events) return;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = c.id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
    c.events = events;
  }

  void destroy_conn(std::uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    conns.erase(it);
    st_closed.fetch_add(1, std::memory_order_relaxed);
  }

  void close_listener() {
    if (!listener_open) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener_fd, nullptr);
    ::close(listener_fd);
    listener_fd = -1;
    listener_open = false;
  }

  /// Everything owed to this client has been delivered (or will never
  /// arrive): no in-flight requests, no buffered responses.
  bool conn_drained(const Conn& c) const {
    return c.inflight == 0 && c.ready.empty() && c.woff >= c.wbuf.size();
  }

  void maybe_close(Conn& c) {
    if (c.closing && conn_drained(c)) destroy_conn(c.id);
  }

  void enqueue_response(Conn& c, std::string line) {
    line.push_back('\n');
    c.wbuf += line;
    st_responses.fetch_add(1, std::memory_order_relaxed);
  }

  /// Move in-order completions from the reorder map into the write buffer.
  void flush_ready(Conn& c) {
    auto it = c.ready.begin();
    while (it != c.ready.end() && it->first == c.next_flush) {
      enqueue_response(c, std::move(it->second));
      it = c.ready.erase(it);
      ++c.next_flush;
    }
  }

  /// Write as much of wbuf as the socket accepts; manage EPOLLOUT and the
  /// backpressure read-resume.  Returns false if the connection died.
  bool pump_writes(Conn& c) {
    while (c.woff < c.wbuf.size()) {
      ssize_t n = ::send(c.fd, c.wbuf.data() + c.woff, c.wbuf.size() - c.woff,
                         MSG_NOSIGNAL);
      if (n > 0) {
        c.woff += static_cast<std::size_t>(n);
        st_bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      destroy_conn(c.id);  // EPIPE / ECONNRESET: client is gone
      return false;
    }
    if (c.woff >= c.wbuf.size()) {
      c.wbuf.clear();
      c.woff = 0;
    } else if (c.woff > (std::size_t{1} << 20)) {
      c.wbuf.erase(0, c.woff);  // keep the buffer from growing unbounded
      c.woff = 0;
    }

    const std::size_t pending = c.wbuf.size() - c.woff;
    std::uint32_t want = 0;
    if (pending > 0) want |= EPOLLOUT;
    if (c.reads_paused && pending < opts.write_low_watermark &&
        !c.read_closed && !draining) {
      c.reads_paused = false;
    }
    if (!c.reads_paused && !c.read_closed && !draining && !c.closing) {
      want |= EPOLLIN;
    }
    epoll_set(c, want);
    const std::uint64_t id = c.id;  // maybe_close may free the Conn
    maybe_close(c);
    return conns.count(id) != 0;
  }

  /// Live event-loop counters for the admin stats op.  Runs on the loop
  /// thread (handle_line), so conns is safe to read; shard queue depths
  /// take each queue's mutex briefly.
  io::Json server_stats_json() {
    io::Json j;
    j.set("connections_accepted",
          static_cast<long long>(st_accepted.load(std::memory_order_relaxed)));
    j.set("connections_closed",
          static_cast<long long>(st_closed.load(std::memory_order_relaxed)));
    j.set("connections_open", static_cast<long long>(conns.size()));
    j.set("requests",
          static_cast<long long>(st_requests.load(std::memory_order_relaxed)));
    j.set("responses", static_cast<long long>(
                           st_responses.load(std::memory_order_relaxed)));
    j.set("reads_paused",
          static_cast<long long>(st_paused.load(std::memory_order_relaxed)));
    j.set("oversized_lines", static_cast<long long>(
                                 st_oversized.load(std::memory_order_relaxed)));
    j.set("bytes_in",
          static_cast<long long>(st_bytes_in.load(std::memory_order_relaxed)));
    j.set("bytes_out",
          static_cast<long long>(st_bytes_out.load(std::memory_order_relaxed)));
    io::JsonArray depths;
    for (auto& q : queues) {
      std::lock_guard<std::mutex> lk(q->mu);
      depths.push(static_cast<long long>(q->tasks.size()));
    }
    j.set("shard_queue_depths", depths);
    return j;
  }

  /// Parse + route one complete request line on connection `c`.
  void handle_line(Conn& c, const std::string& line) {
    st_requests.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t received_ns = obs::Tracer::now_ns();
    wire::Parsed p = wire::parse_line(line);
    const std::uint64_t seq = c.next_seq++;
    if (p.op == wire::Parsed::Op::kPing || p.op == wire::Parsed::Op::kError) {
      // Cheap: answer inline on the loop thread, preserving order through
      // the same sequencing path as dispatched requests.
      c.ready[seq] =
          wire::execute_and_render(router.shard(0), p, router.threads());
      return;
    }
    if (p.op == wire::Parsed::Op::kMetrics ||
        p.op == wire::Parsed::Op::kStats ||
        p.op == wire::Parsed::Op::kTrace) {
      // Admin introspection answers inline too: a scrape must observe the
      // live server, not wait in line behind the solver queues.
      wire::AdminEnv env;
      env.session = &router.shard(0);
      env.router = &router;
      env.server_block = [this] { return server_stats_json(); };
      c.ready[seq] = wire::execute_admin(p, env);
      return;
    }
    std::size_t shard_idx;
    if (p.op == wire::Parsed::Op::kQuery) {
      shard_idx = router.shard_of(p.query);
    } else {
      shard_idx = scenario_rr++ % router.shards();
    }
    ++c.inflight;
    ShardQueue& q = *queues[shard_idx];
    {
      std::lock_guard<std::mutex> lk(q.mu);
      q.tasks.push_back(ShardTask{c.id, seq, received_ns, std::move(p)});
    }
    q.cv.notify_one();
  }

  /// Split complete lines off rbuf and handle each.  `final_tail` treats an
  /// unterminated remainder as the last request (half-close semantics, same
  /// as getline on the stdin front end).
  void consume_rbuf(Conn& c, bool final_tail) {
    std::size_t start = 0;
    for (;;) {
      std::size_t nl = c.rbuf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = c.rbuf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(c, line);
    }
    c.rbuf.erase(0, start);
    if (final_tail && !c.rbuf.empty()) {
      std::string line = std::move(c.rbuf);
      c.rbuf.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(c, line);
    }
    if (!final_tail && c.rbuf.size() > opts.max_line_bytes) {
      st_oversized.fetch_add(1, std::memory_order_relaxed);
      c.rbuf.clear();
      const std::uint64_t seq = c.next_seq++;
      c.ready[seq] = wire::render_error(
          wire::RequestId{},
          rlc::Status::invalid_argument("request line exceeds max_line_bytes"));
      c.closing = true;  // framing is lost; answer, flush, close
    }
  }

  void handle_readable(Conn& c) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.rbuf.append(buf, static_cast<std::size_t>(n));
        st_bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
        if (c.rbuf.size() > opts.max_line_bytes &&
            c.rbuf.find('\n') == std::string::npos) {
          break;  // oversized: stop reading, consume_rbuf rejects it
        }
        continue;
      }
      if (n == 0) {
        // EOF.  The client may have half-closed (shutdown(SHUT_WR)) and
        // still be reading: serve everything buffered, including an
        // unterminated trailing line, then close once drained.
        c.read_closed = true;
        c.closing = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      destroy_conn(c.id);  // hard error mid-stream: drop the connection
      return;
    }
    consume_rbuf(c, /*final_tail=*/c.read_closed);
    flush_ready(c);
    if (!c.reads_paused && !c.read_closed &&
        c.wbuf.size() - c.woff > opts.write_high_watermark) {
      c.reads_paused = true;
      st_paused.fetch_add(1, std::memory_order_relaxed);
    }
    pump_writes(c);
  }

  void handle_acceptable() {
    for (;;) {
      int fd = ::accept4(listener_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or a transient per-connection error: keep serving
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
        ::close(fd);
        continue;
      }
      st_accepted.fetch_add(1, std::memory_order_relaxed);
      conns.emplace(conn->id, std::move(conn));
    }
  }

  void drain_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lk(comp_mu);
      batch.swap(completions);
    }
    for (Completion& done : batch) {
      auto it = conns.find(done.conn_id);
      if (it == conns.end()) continue;  // client vanished mid-request
      Conn& c = *it->second;
      c.ready[done.seq] = std::move(done.line);
      if (c.inflight > 0) --c.inflight;
      flush_ready(c);
      pump_writes(c);
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    close_listener();
    // Stop reading everywhere; whatever is already parsed or in flight
    // completes and flushes.  Unparsed partial lines are dropped — the
    // client never finished sending them.
    std::vector<std::uint64_t> ids;
    ids.reserve(conns.size());
    for (auto& [id, c] : conns) ids.push_back(id);
    for (std::uint64_t id : ids) {
      auto it = conns.find(id);
      if (it == conns.end()) continue;
      Conn& c = *it->second;
      c.closing = true;
      pump_writes(c);  // may destroy the conn; hence the id snapshot
    }
    for (auto& q : queues) {
      {
        std::lock_guard<std::mutex> lk(q->mu);
        q->stop = true;
      }
      q->cv.notify_all();
    }
  }

  // ---- the loop --------------------------------------------------------

  rlc::Status serve() {
    if (listener_fd < 0) {
      return rlc::Status::invalid_argument("serve() before listen_unix()");
    }
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) return errno_status("epoll_create1");
    const int wfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wfd < 0) return errno_status("eventfd");
    wake_fd.store(wfd, std::memory_order_release);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listener_fd, &ev) < 0) {
      return errno_status("epoll_ctl(listener)");
    }
    listener_open = true;
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wfd, &ev) < 0) {
      return errno_status("epoll_ctl(wake)");
    }

    queues.clear();
    for (std::size_t i = 0; i < router.shards(); ++i) {
      queues.push_back(std::make_unique<ShardQueue>());
    }
    dispatchers.reserve(router.shards());
    for (std::size_t i = 0; i < router.shards(); ++i) {
      dispatchers.emplace_back([this, i] { dispatcher_main(i); });
    }

    constexpr int kTickMs = 200;  // belt-and-braces drain poll
    std::vector<epoll_event> events(64);
    for (;;) {
      int n = ::epoll_wait(epoll_fd, events.data(),
                           static_cast<int>(events.size()), kTickMs);
      if (n < 0) {
        if (errno == EINTR) continue;
        begin_drain();
        for (std::thread& t : dispatchers) t.join();
        return errno_status("epoll_wait");
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t tag = events[i].data.u64;
        if (tag == kListenerTag) {
          if (!draining) handle_acceptable();
          continue;
        }
        if (tag == kWakeTag) {
          std::uint64_t count = 0;
          while (::read(wfd, &count, sizeof(count)) > 0) {
          }
          continue;  // completions + drain flag handled below
        }
        auto it = conns.find(tag);
        if (it == conns.end()) continue;  // closed earlier this wakeup
        Conn& c = *it->second;
        if (events[i].events & (EPOLLERR | EPOLLHUP)) {
          // EPOLLHUP means both directions are gone (a half-close raises
          // only EPOLLRDHUP/EPOLLIN); nothing can be delivered anymore.
          destroy_conn(tag);
          continue;
        }
        if (events[i].events & EPOLLIN) {
          handle_readable(c);
          if (conns.find(tag) == conns.end()) continue;
        }
        if (events[i].events & EPOLLOUT) pump_writes(c);
      }

      drain_completions();
      if (drain_requested.load(std::memory_order_relaxed)) begin_drain();
      if (draining) {
        // Close every fully-served connection; exit once none remain.
        std::vector<std::uint64_t> ids;
        ids.reserve(conns.size());
        for (auto& [id, c] : conns) ids.push_back(id);
        for (std::uint64_t id : ids) {
          auto it = conns.find(id);
          if (it != conns.end()) maybe_close(*it->second);
        }
        if (conns.empty()) break;
      }
    }

    for (std::thread& t : dispatchers) t.join();
    dispatchers.clear();
    return rlc::Status::ok();
  }
};

EventLoopServer::EventLoopServer(const ServerOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {}

EventLoopServer::~EventLoopServer() = default;

rlc::Status EventLoopServer::listen_unix(const std::string& path) {
  return impl_->listen_unix(path);
}

rlc::Status EventLoopServer::serve() { return impl_->serve(); }

void EventLoopServer::request_drain() noexcept { impl_->request_drain(); }

ShardRouter& EventLoopServer::router() { return impl_->router; }
const ShardRouter& EventLoopServer::router() const { return impl_->router; }

std::size_t EventLoopServer::threads() const { return impl_->router.threads(); }

EventLoopServer::Stats EventLoopServer::stats() const {
  Stats s;
  s.connections_accepted =
      impl_->st_accepted.load(std::memory_order_relaxed);
  s.connections_closed = impl_->st_closed.load(std::memory_order_relaxed);
  // Gauge: closed is incremented after accepted, so a racy read can
  // transiently see closed > accepted — clamp instead of wrapping.
  s.connections_open = s.connections_accepted >= s.connections_closed
                           ? s.connections_accepted - s.connections_closed
                           : 0;
  s.requests = impl_->st_requests.load(std::memory_order_relaxed);
  s.responses = impl_->st_responses.load(std::memory_order_relaxed);
  s.reads_paused = impl_->st_paused.load(std::memory_order_relaxed);
  s.oversized_lines = impl_->st_oversized.load(std::memory_order_relaxed);
  s.bytes_in = impl_->st_bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = impl_->st_bytes_out.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rlc::svc

#else  // !__linux__

namespace rlc::svc {

struct EventLoopServer::Impl {
  explicit Impl(const ServerOptions& o) : router([&] {
    RouterOptions r;
    r.shards = o.shards;
    r.threads_per_shard = o.threads_per_shard;
    r.cache_capacity = o.cache_capacity;
    return r;
  }()) {}
  ShardRouter router;
};

EventLoopServer::EventLoopServer(const ServerOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {}
EventLoopServer::~EventLoopServer() = default;

rlc::Status EventLoopServer::listen_unix(const std::string&) {
  return rlc::Status::internal("EventLoopServer requires Linux (epoll)");
}
rlc::Status EventLoopServer::serve() {
  return rlc::Status::internal("EventLoopServer requires Linux (epoll)");
}
void EventLoopServer::request_drain() noexcept {}
ShardRouter& EventLoopServer::router() { return impl_->router; }
const ShardRouter& EventLoopServer::router() const { return impl_->router; }
std::size_t EventLoopServer::threads() const { return impl_->router.threads(); }
EventLoopServer::Stats EventLoopServer::stats() const { return {}; }

}  // namespace rlc::svc

#endif
