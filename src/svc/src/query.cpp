#include "rlc/svc/query.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

namespace rlc::svc {

namespace {

rlc::Status bad(const std::string& what) {
  return rlc::Status::invalid_argument(what);
}

}  // namespace

rlc::Status QueryRequest::validate() const {
  if (technology.empty()) return bad("technology must be non-empty");
  if (!std::isfinite(l) || l < 0.0) {
    return bad("l must be finite and >= 0 (got " + io::render_number(l) + ")");
  }
  if (!(threshold > 0.0) || !(threshold < 1.0)) {
    return bad("threshold must be in (0, 1) (got " +
               io::render_number(threshold) + ")");
  }
  if (max_iterations < 1) return bad("max_iterations must be >= 1");
  if (!(residual_tolerance > 0.0)) {
    return bad("residual_tolerance must be > 0");
  }
  if (talbot_points < 4) return bad("talbot_points must be >= 4");
  if (!std::isfinite(line_length) || line_length < 0.0) {
    return bad("line_length must be finite and >= 0");
  }
  if (n_conductors < 1 || n_conductors > 3) {
    return bad("n_conductors must be 1, 2 or 3 (got " +
               std::to_string(n_conductors) + ")");
  }
  if (!std::isfinite(coupling_cc) || coupling_cc < 0.0) {
    return bad("coupling_cc must be finite and >= 0");
  }
  if (!std::isfinite(coupling_km) || std::abs(coupling_km) >= 1.0) {
    return bad("coupling_km must satisfy |km| < 1");
  }
  if (!std::isfinite(noise_vmax) || noise_vmax < 0.0) {
    return bad("noise_vmax must be finite and >= 0");
  }
  if (n_conductors == 1 &&
      (coupling_cc != 0.0 || coupling_km != 0.0 || noise_vmax != 0.0)) {
    return bad(
        "coupling_cc/coupling_km/noise_vmax require n_conductors >= 2");
  }
  // An unknown objective is a typed error, never a silent "delay" fallback:
  // a client that asks for "minpower" must not get a delay answer cached
  // under a key that will collide with a future spelling.
  if (objective != "delay" && objective != "power") {
    return bad("objective must be \"delay\" or \"power\" (got \"" + objective +
               "\")");
  }
  if (std::isnan(delay_slack_eps) || delay_slack_eps < 0.0) {
    return bad("delay_slack_eps must be >= 0 (or infinity for unconstrained)");
  }
  if (objective == "power" && n_conductors != 1) {
    return bad("objective \"power\" requires n_conductors == 1");
  }
  if (objective != "power" && delay_slack_eps != kDefaultDelaySlackEps) {
    return bad("delay_slack_eps requires objective \"power\"");
  }
  if (std::isnan(deadline_seconds) || deadline_seconds < 0.0) {
    return bad("deadline_seconds must be >= 0 (or infinity for none)");
  }
  if (trace_id.size() > kMaxTraceIdLength) {
    return bad("trace_id must be <= " + std::to_string(kMaxTraceIdLength) +
               " characters (got " + std::to_string(trace_id.size()) + ")");
  }
  return rlc::Status::ok();
}

std::string QueryRequest::cache_key() const {
  // Fixed field order, exact double bits (%.17g via render_number), one
  // canonical spelling per field.  deadline_seconds is deliberately absent.
  std::string key;
  key.reserve(160);
  key += "tech=";
  key += technology;
  key += ";l=";
  key += io::render_number(l);
  key += ";f=";
  key += io::render_number(threshold);
  key += ";it=";
  key += std::to_string(max_iterations);
  key += ";tol=";
  key += io::render_number(residual_tolerance);
  key += ";exact=";
  key += with_exact_delay ? '1' : '0';
  key += ";tp=";
  key += std::to_string(talbot_points);
  key += ";L=";
  key += io::render_number(line_length);
  key += ";nc=";
  key += std::to_string(n_conductors);
  key += ";cc=";
  key += io::render_number(coupling_cc);
  key += ";km=";
  key += io::render_number(coupling_km);
  key += ";vmax=";
  key += io::render_number(noise_vmax);
  // Objective block only when non-default, so every pre-objective key (and
  // its FNV hash, pinned by tests) is preserved verbatim.
  if (objective != "delay") {
    key += ";obj=";
    key += objective;
    key += ";eps=";
    key += io::render_number(delay_slack_eps);
  }
  return key;
}

std::uint64_t QueryRequest::cache_hash() const {
  // FNV-1a 64.
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : cache_key()) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

io::Json QueryRequest::to_json() const {
  io::Json j;
  j.set("technology", technology);
  j.set("l", l);
  j.set("threshold", threshold);
  j.set("max_iterations", max_iterations);
  j.set("residual_tolerance", residual_tolerance);
  j.set("with_exact_delay", with_exact_delay);
  j.set("talbot_points", talbot_points);
  j.set("line_length", line_length);
  j.set("n_conductors", n_conductors);
  j.set("coupling_cc", coupling_cc);
  j.set("coupling_km", coupling_km);
  j.set("noise_vmax", noise_vmax);
  // Only when non-default: delay-objective requests serialize exactly as
  // before the objective extension.
  if (objective != "delay") {
    j.set("objective", objective);
    j.set("delay_slack_eps", delay_slack_eps);
  }
  // Infinity renders as null; from_json treats null/absent as "no deadline".
  j.set("deadline_seconds", deadline_seconds);
  // Only when set: untraced requests must serialize exactly as before.
  if (!trace_id.empty()) j.set("trace_id", trace_id);
  return j;
}

namespace {

// Strict field extraction: a missing key keeps the default, but a key that
// is present with the wrong JSON kind is a framing error — a serving API
// must not silently ignore a mistyped "l" and answer for l = 0.

rlc::Status take_number(const io::JsonValue& v, const char* key,
                        double* out) {
  const io::JsonValue* f = v.find(key);
  if (!f || f->is_null()) return rlc::Status::ok();
  if (f->kind() != io::JsonValue::Kind::kNumber) {
    return bad(std::string(key) + " must be a number");
  }
  *out = f->as_number();
  return rlc::Status::ok();
}

rlc::Status take_int(const io::JsonValue& v, const char* key, int* out) {
  double d = *out;
  if (rlc::Status st = take_number(v, key, &d); !st.is_ok()) return st;
  // Range-check before casting: float-to-int conversion of an out-of-range
  // double (an untrusted {"max_iterations": 1e300}) is undefined behavior,
  // so the cast must not run until the value is known to fit.  NaN fails
  // the >= comparison and is rejected the same way.
  constexpr double kIntMin =
      static_cast<double>(std::numeric_limits<int>::min());
  constexpr double kIntMax =
      static_cast<double>(std::numeric_limits<int>::max());
  if (!(d >= kIntMin) || !(d <= kIntMax) || std::nearbyint(d) != d) {
    return bad(std::string(key) + " must be an integer");
  }
  *out = static_cast<int>(d);
  return rlc::Status::ok();
}

rlc::Status take_bool(const io::JsonValue& v, const char* key, bool* out) {
  const io::JsonValue* f = v.find(key);
  if (!f || f->is_null()) return rlc::Status::ok();
  if (f->kind() != io::JsonValue::Kind::kBool) {
    return bad(std::string(key) + " must be a boolean");
  }
  *out = f->as_bool();
  return rlc::Status::ok();
}

rlc::Status take_string(const io::JsonValue& v, const char* key,
                        std::string* out) {
  const io::JsonValue* f = v.find(key);
  if (!f || f->is_null()) return rlc::Status::ok();
  if (f->kind() != io::JsonValue::Kind::kString) {
    return bad(std::string(key) + " must be a string");
  }
  *out = f->as_string();
  return rlc::Status::ok();
}

}  // namespace

rlc::StatusOr<QueryRequest> QueryRequest::from_json(const io::JsonValue& v) {
  if (v.kind() != io::JsonValue::Kind::kObject) {
    return bad("query request must be a JSON object");
  }
  QueryRequest req;
  for (const rlc::Status& st : {
           take_string(v, "technology", &req.technology),
           take_number(v, "l", &req.l),
           take_number(v, "threshold", &req.threshold),
           take_int(v, "max_iterations", &req.max_iterations),
           take_number(v, "residual_tolerance", &req.residual_tolerance),
           take_bool(v, "with_exact_delay", &req.with_exact_delay),
           take_int(v, "talbot_points", &req.talbot_points),
           take_number(v, "line_length", &req.line_length),
           take_int(v, "n_conductors", &req.n_conductors),
           take_number(v, "coupling_cc", &req.coupling_cc),
           take_number(v, "coupling_km", &req.coupling_km),
           take_number(v, "noise_vmax", &req.noise_vmax),
           take_string(v, "objective", &req.objective),
           take_number(v, "delay_slack_eps", &req.delay_slack_eps),
           take_number(v, "deadline_seconds", &req.deadline_seconds),
           take_string(v, "trace_id", &req.trace_id),
       }) {
    if (!st.is_ok()) return st;
  }
  if (rlc::Status st = req.validate(); !st.is_ok()) return st;
  return req;
}

io::Json QueryResult::to_json() const {
  io::Json j;
  j.set("h", h);
  j.set("k", k);
  j.set("tau", tau);
  j.set("delay_per_length", delay_per_length);
  if (total_delay > 0.0) j.set("total_delay", total_delay);
  if (has_exact) j.set("exact_delay", exact_delay);
  if (has_noise) {
    j.set("peak_noise", peak_noise);
    j.set("noise_width", noise_width);
    j.set("constraint_active", constraint_active);
  }
  // Power block: present only for power-objective answers, so every
  // delay-objective response stays byte-identical to the pre-power wire.
  if (has_power) {
    j.set("power_total", power_total);
    j.set("power_dynamic", power_dynamic);
    j.set("power_short_circuit", power_short_circuit);
    j.set("power_leakage", power_leakage);
    j.set("delay_ref", delay_ref);
    j.set("power_ref", power_ref);
    j.set("power_constraint_active", power_constraint_active);
  }
  j.set("newton_iterations", newton_iterations);
  j.set("method", method);
  j.set("from_cache", from_cache);
  j.set("wall_seconds", wall_seconds);
  // Tracing block: present only for traced requests, so responses to
  // clients that never set trace_id stay byte-identical.
  if (!trace_id.empty()) {
    j.set("trace_id", trace_id);
    j.set("queue_us", queue_us);
    j.set("cache_us", cache_us);
    j.set("solve_us", solve_us);
  }
  return j;
}

bool QueryResult::same_answer(const QueryResult& o) const {
  return h == o.h && k == o.k && tau == o.tau &&
         delay_per_length == o.delay_per_length &&
         total_delay == o.total_delay && exact_delay == o.exact_delay &&
         has_exact == o.has_exact && peak_noise == o.peak_noise &&
         noise_width == o.noise_width &&
         constraint_active == o.constraint_active &&
         has_noise == o.has_noise && power_total == o.power_total &&
         power_dynamic == o.power_dynamic &&
         power_short_circuit == o.power_short_circuit &&
         power_leakage == o.power_leakage && delay_ref == o.delay_ref &&
         power_ref == o.power_ref &&
         power_constraint_active == o.power_constraint_active &&
         has_power == o.has_power &&
         newton_iterations == o.newton_iterations && method == o.method;
}

}  // namespace rlc::svc
