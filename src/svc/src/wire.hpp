#pragma once

/// \file wire.hpp
/// Internal NDJSON wire-format helpers shared by the two front ends of the
/// query service: the synchronous Server (serve.cpp, stdin/pipe mode) and
/// the epoll EventLoopServer (server.cpp, socket mode).  One request line
/// parses to one Parsed; one Parsed renders to exactly one response line.
/// Not installed — the stable surface is serve.hpp / server.hpp.

#include <functional>
#include <string>
#include <variant>

#include "rlc/base/status.hpp"
#include "rlc/scenario/spec.hpp"
#include "rlc/svc/query.hpp"
#include "rlc/svc/session.hpp"

namespace rlc::svc {
class ShardRouter;
}  // namespace rlc::svc

namespace rlc::svc::wire {

/// Echoed request id: absent, string, or number (other kinds are rejected
/// as malformed so a response can always be correlated unambiguously).
using RequestId = std::variant<std::monostate, std::string, double>;

/// One parsed request line, ready to execute.  kMetrics/kStats/kTrace are
/// the reserved admin ops — answered inline by the front end (never queued
/// behind solver work) from live registry/tracer/router state.
struct Parsed {
  enum class Op { kQuery, kScenario, kPing, kMetrics, kStats, kTrace, kError };
  Op op = Op::kError;
  RequestId id;
  QueryRequest query;
  scenario::ScenarioSpec spec;
  double deadline_seconds = Session::kNoDeadline;
  std::string format = "prometheus";  ///< kMetrics: prometheus | json | text
  std::string trace_action;           ///< kTrace: start | stop | dump
  bool chrome = false;  ///< kTrace dump: include the Chrome trace document
  rlc::Status error;  ///< op == kError: what was wrong with the line
};

/// Never throws; malformed input becomes op == kError with a typed Status.
Parsed parse_line(const std::string& line);

/// Render one response line (no trailing newline).
std::string render_ok(const RequestId& id, const io::Json& result);
std::string render_error(const RequestId& id, const rlc::Status& st);

/// What the admin ops can see.  `session` is required (single-session
/// front end stats); `router` adds per-shard cache stats when serving
/// sharded; `server_block`, when set, contributes the event-loop server's
/// own counters (connections, bytes, queue depths) to the stats response.
struct AdminEnv {
  Session* session = nullptr;
  ShardRouter* router = nullptr;
  std::function<io::Json()> server_block;
};

/// Execute one admin op (kMetrics/kStats/kTrace) against live process
/// state and render the response line.  Cheap and lock-light by design —
/// front ends answer these inline on the I/O thread, like pings.
std::string execute_admin(const Parsed& p, const AdminEnv& env);

/// The full per-request execution shared by both front ends: queries go
/// through session.submit, scenarios through session.run_scenario, pings
/// and admin ops answer inline, errors echo their Status.  `threads` is
/// what a ping reports (the serving concurrency, which for a sharded
/// server is not the session's own pool size).
std::string execute_and_render(Session& session, const Parsed& p,
                               std::size_t threads);

}  // namespace rlc::svc::wire
