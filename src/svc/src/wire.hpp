#pragma once

/// \file wire.hpp
/// Internal NDJSON wire-format helpers shared by the two front ends of the
/// query service: the synchronous Server (serve.cpp, stdin/pipe mode) and
/// the epoll EventLoopServer (server.cpp, socket mode).  One request line
/// parses to one Parsed; one Parsed renders to exactly one response line.
/// Not installed — the stable surface is serve.hpp / server.hpp.

#include <string>
#include <variant>

#include "rlc/base/status.hpp"
#include "rlc/scenario/spec.hpp"
#include "rlc/svc/query.hpp"
#include "rlc/svc/session.hpp"

namespace rlc::svc::wire {

/// Echoed request id: absent, string, or number (other kinds are rejected
/// as malformed so a response can always be correlated unambiguously).
using RequestId = std::variant<std::monostate, std::string, double>;

/// One parsed request line, ready to execute.
struct Parsed {
  enum class Op { kQuery, kScenario, kPing, kError };
  Op op = Op::kError;
  RequestId id;
  QueryRequest query;
  scenario::ScenarioSpec spec;
  double deadline_seconds = Session::kNoDeadline;
  rlc::Status error;  ///< op == kError: what was wrong with the line
};

/// Never throws; malformed input becomes op == kError with a typed Status.
Parsed parse_line(const std::string& line);

/// Render one response line (no trailing newline).
std::string render_ok(const RequestId& id, const io::Json& result);
std::string render_error(const RequestId& id, const rlc::Status& st);

/// The full per-request execution shared by both front ends: queries go
/// through session.submit, scenarios through session.run_scenario, pings
/// answer inline, errors echo their Status.  `threads` is what a ping
/// reports (the serving concurrency, which for a sharded server is not the
/// session's own pool size).
std::string execute_and_render(Session& session, const Parsed& p,
                               std::size_t threads);

}  // namespace rlc::svc::wire
