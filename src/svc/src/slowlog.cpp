#include "rlc/svc/slowlog.hpp"

#include <algorithm>

namespace rlc::svc {

SlowQueryLog& SlowQueryLog::global() {
  // Never destroyed: pool workers may record past main()'s static teardown.
  static SlowQueryLog* log = new SlowQueryLog;
  return *log;
}

void SlowQueryLog::note(Entry e) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free reject: once the log is full, anything at or below the
  // current floor cannot rank.  The floor only rises, so a stale read can
  // admit a loser (harmless, fixed under the lock) but never reject a
  // winner that a fresh read would admit.
  if (e.total_us <= floor_us_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.size() >= kCapacity &&
      e.total_us <= entries_.back().total_us) {
    return;
  }
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), e,
      [](const Entry& a, const Entry& b) { return a.total_us > b.total_us; });
  entries_.insert(pos, std::move(e));
  if (entries_.size() > kCapacity) entries_.pop_back();
  if (entries_.size() >= kCapacity) {
    floor_us_.store(entries_.back().total_us, std::memory_order_relaxed);
  }
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::worst() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_;
}

io::Json SlowQueryLog::to_json() const {
  io::JsonArray arr;
  for (const Entry& e : worst()) {
    io::Json j;
    j.set("trace_id", e.trace_id);
    j.set("technology", e.technology);
    j.set("cache_hash", static_cast<long long>(e.cache_hash));
    j.set("from_cache", e.from_cache);
    j.set("status", e.status);
    j.set("queue_us", e.queue_us);
    j.set("cache_us", e.cache_us);
    j.set("solve_us", e.solve_us);
    j.set("total_us", e.total_us);
    arr.push(j);
  }
  io::Json out;
  out.set("recorded", static_cast<long long>(recorded()));
  out.set("entries", arr);
  return out;
}

void SlowQueryLog::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
  floor_us_.store(0.0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
}

}  // namespace rlc::svc
