#include "rlc/svc/session.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "rlc/core/exact_delay.hpp"
#include "rlc/core/optimize_api.hpp"
#include "rlc/core/optimizer.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/scenario/registry.hpp"
#include "rlc/svc/slowlog.hpp"
#include "rlc/tline/coupled_line.hpp"

namespace rlc::svc {

namespace {

/// svc.* instrumentation ids, interned once.  Hit rate = hits/(hits+misses);
/// svc.latency_us carries p50/p99 through the registry's histogram
/// quantiles; queue depth counts in-flight requests.
struct SvcMetrics {
  int requests;
  int batches;
  int cache_hits;
  int cache_misses;
  int deadline_exceeded;
  int cancelled;
  int errors;
  int queue_depth;
  int queue_depth_max;
  int batch_size;
  int batch_grouped;
  int latency_us;
  int stage_queue_us;
  int stage_cache_us;
  int stage_solve_us;
  int slow_total_us;
  static const SvcMetrics& get() {
    auto& r = obs::Registry::global();
    static const SvcMetrics m{
        r.counter("svc.requests"),
        r.counter("svc.batches"),
        r.counter("svc.cache.hits"),
        r.counter("svc.cache.misses"),
        r.counter("svc.deadline_exceeded"),
        r.counter("svc.cancelled"),
        r.counter("svc.errors"),
        r.gauge("svc.queue_depth"),
        r.gauge("svc.queue_depth_max"),
        r.histogram("svc.batch_size", 1.0, 4096.0, 12),
        r.counter("svc.batch.grouped"),
        r.histogram("svc.latency_us", 1.0, 1.0e7, 32),
        r.histogram("svc.stage.queue_us", 1.0, 1.0e7, 32),
        r.histogram("svc.stage.cache_us", 1.0, 1.0e7, 32),
        r.histogram("svc.stage.solve_us", 1.0, 1.0e7, 32),
        r.histogram("svc.slow.total_us", 1.0, 1.0e7, 32),
    };
    return m;
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Record the per-stage histograms for every request and offer traced
/// requests to the slow-query log.  Stage time is observation, never part
/// of the answer.
void account_stages(const QueryRequest& req, const char* status,
                    bool from_cache, double queue_us, double cache_us,
                    double solve_us) {
  auto& reg = obs::Registry::global();
  const SvcMetrics& m = SvcMetrics::get();
  reg.record(m.stage_queue_us, queue_us);
  reg.record(m.stage_cache_us, cache_us);
  reg.record(m.stage_solve_us, solve_us);
  if (req.trace_id.empty()) return;
  const double total_us = queue_us + cache_us + solve_us;
  reg.record(m.slow_total_us, total_us);
  SlowQueryLog::Entry e;
  e.trace_id = req.trace_id;
  e.technology = req.technology;
  e.cache_hash = req.cache_hash();
  e.from_cache = from_cache;
  e.status = status;
  e.queue_us = queue_us;
  e.cache_us = cache_us;
  e.solve_us = solve_us;
  e.total_us = total_us;
  SlowQueryLog::global().note(std::move(e));
}

}  // namespace

struct Session::Impl {
  explicit Impl(const SessionOptions& opts)
      : pool(opts.threads), cache(opts.cache_capacity) {
    scenario::register_all_scenarios();  // idempotent; needed by run_scenario
  }

  exec::ThreadPool pool;
  LruCache<QueryResult> cache;

  /// The whole request path for one query.  Never throws: every failure
  /// mode is a Status (the boundary rule).  Order matters — validation,
  /// then the pre-flight deadline/cancel check, then the cache, then the
  /// solve — so an expired deadline does no work and writes nothing.
  ///
  /// `received_ns` (Tracer::now_ns clock, 0 = unknown) is when the server
  /// first read the request off the wire; the gap to pickup here is the
  /// queue stage of the per-request attribution.
  rlc::StatusOr<QueryResult> answer(const QueryRequest& req,
                                    const CancelToken& cancel,
                                    std::int64_t received_ns = 0) {
    auto& reg = obs::Registry::global();
    const SvcMetrics& m = SvcMetrics::get();
    const auto t0 = std::chrono::steady_clock::now();
    reg.add(m.requests);

    double queue_us = 0.0;
    if (received_ns > 0) {
      const std::int64_t now = obs::Tracer::now_ns();
      if (now > received_ns) {
        queue_us = static_cast<double>(now - received_ns) / 1e3;
      }
    }

    if (rlc::Status st = req.validate(); !st.is_ok()) {
      reg.add(m.errors);
      return st;
    }
    if (cancel.cancel_requested()) {
      reg.add(m.cancelled);
      account_stages(req, "cancelled", false, queue_us, 0.0, 0.0);
      return rlc::Status::cancelled("request cancelled before start");
    }
    const Deadline deadline = Deadline::after(req.deadline_seconds);
    if (deadline.expired()) {
      reg.add(m.deadline_exceeded);
      account_stages(req, "deadline_exceeded", false, queue_us, 0.0, 0.0);
      return rlc::Status::deadline_exceeded(
          "deadline expired before the solve started");
    }

    const std::string key = req.cache_key();
    const auto t_cache = std::chrono::steady_clock::now();
    std::optional<QueryResult> hit = cache.get(key);
    const double cache_us = seconds_since(t_cache) * 1e6;
    if (hit) {
      reg.add(m.cache_hits);
      hit->from_cache = true;
      hit->wall_seconds = seconds_since(t0);
      reg.record(m.latency_us, hit->wall_seconds * 1e6);
      account_stages(req, "ok", true, queue_us, cache_us, 0.0);
      hit->trace_id = req.trace_id;  // empty for untraced: nothing emitted
      hit->queue_us = queue_us;
      hit->cache_us = cache_us;
      hit->solve_us = 0.0;
      return *hit;
    }
    reg.add(m.cache_misses);

    ExecScope scope(cancel, deadline);
    const auto t_solve = std::chrono::steady_clock::now();
    try {
      rlc::StatusOr<QueryResult> result = compute(req);
      const double solve_us = seconds_since(t_solve) * 1e6;
      if (result.is_ok()) {
        result->wall_seconds = seconds_since(t0);
        // Cache BEFORE stamping the trace block: cached entries are shared
        // across clients and must stay trace-free.
        cache.put(key, *result);
        reg.record(m.latency_us, result->wall_seconds * 1e6);
        account_stages(req, "ok", false, queue_us, cache_us, solve_us);
        result->trace_id = req.trace_id;
        result->queue_us = queue_us;
        result->cache_us = cache_us;
        result->solve_us = solve_us;
      } else {
        // The unified core::optimize() entry point converts mid-solve
        // cancellation into a Status at ITS boundary (instead of letting
        // CancelledError unwind to the catches below), so the counters must
        // cover both delivery mechanisms.
        switch (result.status().code()) {
          case StatusCode::kNoConvergence:
            reg.add(m.errors);
            break;
          case StatusCode::kCancelled:
            reg.add(m.cancelled);
            break;
          case StatusCode::kDeadlineExceeded:
            reg.add(m.deadline_exceeded);
            break;
          default:
            break;
        }
        account_stages(req, result.status().code_name(), false, queue_us,
                       cache_us, solve_us);
      }
      return result;
    } catch (const CancelledError& e) {
      reg.add(e.code() == StatusCode::kDeadlineExceeded ? m.deadline_exceeded
                                                        : m.cancelled);
      account_stages(req, e.to_status().code_name(), false, queue_us,
                     cache_us, seconds_since(t_solve) * 1e6);
      return e.to_status();
    } catch (const std::invalid_argument& e) {
      reg.add(m.errors);
      account_stages(req, "invalid_argument", false, queue_us, cache_us,
                     seconds_since(t_solve) * 1e6);
      return rlc::Status::invalid_argument(e.what());
    } catch (const std::exception& e) {
      reg.add(m.errors);
      account_stages(req, "internal", false, queue_us, cache_us,
                     seconds_since(t_solve) * 1e6);
      return rlc::Status::internal(std::string("query failed: ") + e.what());
    }
  }

  /// The solve itself (inside the ExecScope; CancelledError may unwind
  /// through here to the boundary in answer()).
  rlc::StatusOr<QueryResult> compute(const QueryRequest& req) {
    core::Technology tech;
    try {
      tech = scenario::technology_by_name(req.technology);
    } catch (const std::exception& e) {
      // Unknown id OR an out-of-range interpolated node: both are caller
      // errors, whatever exception type the resolver used internally.
      return rlc::Status::invalid_argument(e.what());
    }
    core::OptimOptions opts;
    opts.f = req.threshold;
    opts.max_iterations = req.max_iterations;
    opts.residual_tolerance = req.residual_tolerance;
    if (req.n_conductors > 1) return compute_coupled(req, tech, opts);

    // Scalar path: the unified typed entry point.  objective "delay" is the
    // pure delay kernel (bit-identical to the pre-objective optimize_rlc
    // answer, pinned by tests/svc); objective "power" is the
    // delay-slack-constrained power minimization.
    core::OptimizeRequest oreq;
    oreq.objective = req.objective == "power" ? core::Objective::kPower
                                              : core::Objective::kDelay;
    oreq.l = req.l;
    oreq.optim = opts;
    if (oreq.objective == core::Objective::kPower) {
      oreq.constraints.delay_slack_eps = req.delay_slack_eps;
    }
    rlc::StatusOr<core::OptimizeResponse> oresp = core::optimize(tech, oreq);
    if (!oresp.is_ok()) {
      if (oresp.status().code() == StatusCode::kNoConvergence) {
        return rlc::Status::no_convergence(
            oresp.status().message() + " (technology " + req.technology +
            ", l=" + io::render_number(req.l) + " H/m)");
      }
      return oresp.status();
    }
    const core::OptimResult& opt = oresp->sizing;
    QueryResult r;
    r.h = opt.h;
    r.k = opt.k;
    r.tau = opt.tau;
    r.delay_per_length = opt.delay_per_length;
    r.newton_iterations = opt.newton_iterations;
    r.method =
        opt.method == core::OptimMethod::kNewton ? "newton" : "nelder_mead";
    if (oresp->has_power) {
      r.power_total = oresp->power.total();
      r.power_dynamic = oresp->power.dynamic;
      r.power_short_circuit = oresp->power.short_circuit;
      r.power_leakage = oresp->power.leakage;
      r.delay_ref = oresp->delay_ref;
      r.power_ref = oresp->power_ref;
      r.power_constraint_active = oresp->delay_constraint_active;
      r.has_power = true;
    }
    if (req.line_length > 0.0) {
      r.total_delay = r.delay_per_length * req.line_length;
    }
    if (req.with_exact_delay) {
      core::ExactOptions eo;
      eo.talbot_points = req.talbot_points;
      eo.window_points = req.talbot_points;
      if (std::optional<double> exact = core::exact_threshold_delay(
              tech, req.l, opt.h, opt.k, opt.tau, req.threshold, eo,
              nullptr)) {
        r.exact_delay = *exact;
        r.has_exact = true;
      } else {
        return rlc::Status::no_convergence(
            "exact-waveform engine did not bracket the threshold crossing");
      }
    }
    return r;
  }

  /// Coupled-bus solve (n_conductors >= 2).  The (h, k) answer is sized on
  /// the quiet-neighbour effective line (Miller-1: eff.c += d_max * cc),
  /// exactly like the noise-constrained optimizer's unconstrained leg, and
  /// every answer carries the exact victim noise at the optimum — the peak
  /// is bit-identical to what optimize_rlc_noise_constrained reports for
  /// the same sizing because both call exact_coupled_victim_noise with the
  /// same bus, excitation and tau scale.
  rlc::StatusOr<QueryResult> compute_coupled(const QueryRequest& req,
                                             const core::Technology& tech,
                                             const core::OptimOptions& opts) {
    const std::size_t n = static_cast<std::size_t>(req.n_conductors);
    const tline::LineParams line = tech.line(req.l);
    const double d_max = n >= 3 ? 2.0 : 1.0;
    tline::LineParams eff = line;
    eff.c += d_max * req.coupling_cc;

    QueryResult r;
    if (req.noise_vmax > 0.0) {
      core::NoiseConstraintOptions nc;
      nc.cc = req.coupling_cc;
      nc.km = req.coupling_km;
      nc.conductors = n;
      nc.vmax = req.noise_vmax;
      nc.optim = opts;
      const core::NoiseOptimResult nr =
          core::optimize_rlc_noise_constrained(tech, req.l, nc);
      if (!nr.converged) {
        return rlc::Status::no_convergence(
            "noise-constrained optimizer could not meet peak_noise <= " +
            io::render_number(req.noise_vmax) + " V (technology " +
            req.technology + ", best " + io::render_number(nr.peak_noise) +
            " V)");
      }
      r.h = nr.sizing.h;
      r.k = nr.sizing.k;
      r.tau = nr.sizing.tau;
      r.delay_per_length = nr.sizing.delay_per_length;
      r.newton_iterations = nr.sizing.newton_iterations;
      r.method = nr.sizing.method == core::OptimMethod::kNewton
                     ? "newton"
                     : "nelder_mead";
      r.constraint_active = nr.constraint_active;
    } else {
      const core::OptimResult opt = core::optimize_rlc(tech.rep, eff, opts);
      if (!opt.converged) {
        return rlc::Status::no_convergence(
            "optimizer did not converge within " +
            std::to_string(req.max_iterations) +
            " iterations (technology " + req.technology +
            ", coupled, l=" + io::render_number(req.l) + " H/m)");
      }
      r.h = opt.h;
      r.k = opt.k;
      r.tau = opt.tau;
      r.delay_per_length = opt.delay_per_length;
      r.newton_iterations = opt.newton_iterations;
      r.method = opt.method == core::OptimMethod::kNewton ? "newton"
                                                          : "nelder_mead";
    }
    if (req.line_length > 0.0) {
      r.total_delay = r.delay_per_length * req.line_length;
    }

    // Exact victim noise at the answer: center aggressor, edge victim —
    // the same pattern the noise-constrained solve budgets against.
    const tline::CoupledLine bus =
        tline::symmetric_bus(line, req.coupling_cc, req.coupling_km, n);
    const std::size_t aggressor = n / 2;
    core::CoupledExcitation exc{std::vector<double>(n, 0.0),
                                std::vector<double>(n, 0.0)};
    exc.target[aggressor] = 1.0;
    const tline::DriverLoad dl = tech.rep.scaled(r.k);
    const core::CoupledNoiseResult noise =
        core::exact_coupled_victim_noise(bus, r.h, dl, exc, 0, r.tau);
    r.peak_noise = noise.peak;
    r.noise_width = noise.width;
    r.has_noise = true;

    if (req.with_exact_delay) {
      core::ExactOptions eo;
      eo.talbot_points = req.talbot_points;
      eo.window_points = req.talbot_points;
      // Aggressor threshold crossing with quiet neighbours (the coupled
      // engine takes f as an absolute level; the swing here is 1 V).
      if (std::optional<double> exact = core::exact_coupled_threshold_delay(
              bus, r.h, dl, exc, aggressor, r.tau, req.threshold, eo)) {
        r.exact_delay = *exact;
        r.has_exact = true;
      } else {
        return rlc::Status::no_convergence(
            "coupled exact-waveform engine did not bracket the threshold "
            "crossing");
      }
    }
    return r;
  }
};

Session::Session(const SessionOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {}

Session::~Session() = default;

rlc::StatusOr<QueryResult> Session::submit(const QueryRequest& req) {
  return submit(req, CancelToken{});
}

rlc::StatusOr<QueryResult> Session::submit(const QueryRequest& req,
                                           const CancelToken& cancel) {
  auto& reg = obs::Registry::global();
  const SvcMetrics& m = SvcMetrics::get();
  reg.gauge_add(m.queue_depth, 1);
  reg.gauge_max(m.queue_depth_max, 1);
  rlc::StatusOr<QueryResult> out = impl_->answer(req, cancel);
  reg.gauge_add(m.queue_depth, -1);
  return out;
}

std::vector<rlc::StatusOr<QueryResult>> Session::submit_batch(
    const std::vector<QueryRequest>& reqs) {
  return submit_batch(reqs, CancelToken{});
}

std::vector<rlc::StatusOr<QueryResult>> Session::submit_batch(
    const std::vector<QueryRequest>& reqs, const CancelToken& cancel) {
  return submit_batch(reqs, cancel, {});
}

std::vector<rlc::StatusOr<QueryResult>> Session::submit_batch(
    const std::vector<QueryRequest>& reqs, const CancelToken& cancel,
    const std::vector<std::int64_t>& received_ns) {
  auto& reg = obs::Registry::global();
  const SvcMetrics& m = SvcMetrics::get();
  const std::size_t n = reqs.size();
  reg.add(m.batches);
  reg.record(m.batch_size, static_cast<double>(n));
  reg.gauge_add(m.queue_depth, static_cast<std::int64_t>(n));
  reg.gauge_max(m.queue_depth_max, static_cast<std::int64_t>(n));

  // Group same-key requests before fanning out: the first occurrence of
  // each cache key (in request order, so grouping is deterministic across
  // thread counts) is the LEADER and solves in the first parallel pass —
  // its cold cache miss pays the batched SoA contour sweeps exactly once
  // per distinct line.  The remaining duplicates run in a second pass and
  // resolve from the cache the leaders just filled, which matches what
  // serial submission order would have produced (a leader whose solve
  // failed caches nothing, so its followers recompute — and fail — the
  // same way).
  std::vector<std::size_t> leaders, followers;
  leaders.reserve(n);
  {
    std::unordered_map<std::string, std::size_t> first_of;
    first_of.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool lead = first_of.emplace(reqs[i].cache_key(), i).second;
      (lead ? leaders : followers).push_back(i);
    }
  }
  reg.add(m.batch_grouped, static_cast<std::int64_t>(followers.size()));

  // One task per request (grain 1): requests are coarse relative to the
  // queue, and per-request sharding keeps a slow solve from serializing its
  // chunk-mates.  answer() never throws, so every slot gets filled.
  //
  // Queue-depth accounting is batch-level, not per-request: a gauge is one
  // SHARED atomic (see obs/metrics.hpp), so decrementing it inside the
  // lambda put a contended RMW on the parallel cold path — the only shared
  // write between workers.  Depth now drops when the batch completes; the
  // max gauge still records the true high-water mark.
  std::vector<std::optional<rlc::StatusOr<QueryResult>>> slots(n);
  const auto stamp_of = [&received_ns](std::size_t i) -> std::int64_t {
    return i < received_ns.size() ? received_ns[i] : 0;
  };
  impl_->pool.parallel_for(
      leaders.size(),
      [&](std::size_t j) {
        slots[leaders[j]] = impl_->answer(reqs[leaders[j]], cancel,
                                          stamp_of(leaders[j]));
      },
      1);
  if (!followers.empty()) {
    impl_->pool.parallel_for(
        followers.size(),
        [&](std::size_t j) {
          slots[followers[j]] = impl_->answer(reqs[followers[j]], cancel,
                                              stamp_of(followers[j]));
        },
        1);
  }
  reg.gauge_add(m.queue_depth, -static_cast<std::int64_t>(n));

  std::vector<rlc::StatusOr<QueryResult>> out;
  out.reserve(n);
  for (auto& slot : slots) {
    out.push_back(slot ? std::move(*slot)
                       : rlc::Status::internal("request slot never ran"));
  }
  return out;
}

rlc::StatusOr<scenario::ScenarioResult> Session::run_scenario(
    const scenario::ScenarioSpec& spec, double deadline_seconds,
    const CancelToken& cancel) {
  auto& reg = obs::Registry::global();
  const SvcMetrics& m = SvcMetrics::get();
  reg.add(m.requests);
  if (rlc::Status st = spec.validate(); !st.is_ok()) {
    reg.add(m.errors);
    return st;
  }
  rlc::StatusOr<const scenario::Scenario*> sc =
      scenario::ScenarioRegistry::global().lookup(spec.scenario);
  if (!sc.is_ok()) {
    reg.add(m.errors);
    return sc.status();
  }
  const Deadline deadline = Deadline::after(deadline_seconds);
  if (deadline.expired()) {
    reg.add(m.deadline_exceeded);
    return rlc::Status::deadline_exceeded(
        "deadline expired before the scenario started");
  }
  ExecScope scope(cancel, deadline);
  try {
    return scenario::run_scenario(**sc, spec, &impl_->pool);
  } catch (const CancelledError& e) {
    reg.add(e.code() == StatusCode::kDeadlineExceeded ? m.deadline_exceeded
                                                      : m.cancelled);
    return e.to_status();
  } catch (const std::invalid_argument& e) {
    reg.add(m.errors);
    return rlc::Status::invalid_argument(e.what());
  } catch (const std::exception& e) {
    reg.add(m.errors);
    return rlc::Status::internal(std::string("scenario failed: ") + e.what());
  }
}

std::size_t Session::threads() const { return impl_->pool.size(); }

exec::ThreadPool& Session::pool() { return impl_->pool; }

LruCache<QueryResult>::Stats Session::cache_stats() const {
  return impl_->cache.stats();
}

void Session::clear_cache() { impl_->cache.clear(); }

}  // namespace rlc::svc
