#include "wire.hpp"

#include <utility>

#include "rlc/base/version.hpp"
#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"
#include "rlc/svc/serve.hpp"

namespace rlc::svc::wire {

namespace {

io::Json envelope(const RequestId& id) {
  io::Json j;
  j.set("schema", kServeSchemaVersion);
  j.set("version", rlc::version());
  if (const std::string* s = std::get_if<std::string>(&id)) j.set("id", *s);
  if (const double* d = std::get_if<double>(&id)) j.set("id", *d);
  return j;
}

}  // namespace

std::string render_ok(const RequestId& id, const io::Json& result) {
  io::Json j = envelope(id);
  j.set("status", "ok");
  j.set("code", 0);
  j.set("result", result);
  return j.str();
}

std::string render_error(const RequestId& id, const rlc::Status& st) {
  io::Json j = envelope(id);
  j.set("status", st.code_name());
  j.set("code", static_cast<int>(st.code()));
  j.set("message", st.message());
  return j.str();
}

Parsed parse_line(const std::string& line) {
  Parsed p;
  io::JsonValue v;
  try {
    v = io::parse_json(line);
  } catch (const std::exception& e) {
    p.error = rlc::Status::invalid_argument(
        std::string("malformed request line: ") + e.what());
    return p;
  }
  if (v.kind() != io::JsonValue::Kind::kObject) {
    p.error =
        rlc::Status::invalid_argument("request line must be a JSON object");
    return p;
  }
  if (const io::JsonValue* id = v.find("id")) {
    switch (id->kind()) {
      case io::JsonValue::Kind::kString:
        p.id = id->as_string();
        break;
      case io::JsonValue::Kind::kNumber:
        p.id = id->as_number();
        break;
      case io::JsonValue::Kind::kNull:
        break;
      default:
        p.error = rlc::Status::invalid_argument(
            "id must be a string or a number");
        return p;
    }
  }
  const std::string op = v.string_or("op", "");
  if (op == "ping") {
    p.op = Parsed::Op::kPing;
    return p;
  }
  if (op == "query") {
    rlc::StatusOr<QueryRequest> req = QueryRequest::from_json(v);
    if (!req.is_ok()) {
      p.error = req.status();
      return p;
    }
    p.op = Parsed::Op::kQuery;
    p.query = std::move(*req);
    return p;
  }
  if (op == "scenario") {
    const io::JsonValue* spec = v.find("spec");
    if (!spec) {
      p.error = rlc::Status::invalid_argument(
          "scenario request needs a \"spec\" object");
      return p;
    }
    rlc::StatusOr<scenario::ScenarioSpec> parsed =
        scenario::ScenarioSpec::from_json(*spec);
    if (!parsed.is_ok()) {
      p.error = parsed.status();
      return p;
    }
    p.op = Parsed::Op::kScenario;
    p.spec = std::move(*parsed);
    if (const io::JsonValue* d = v.find("deadline_seconds");
        d && !d->is_null()) {
      try {
        p.deadline_seconds = d->as_number();
      } catch (const std::exception&) {
        p.error =
            rlc::Status::invalid_argument("deadline_seconds must be a number");
        p.op = Parsed::Op::kError;
      }
    }
    return p;
  }
  p.error = rlc::Status::invalid_argument(
      op.empty() ? std::string("request needs an \"op\" field")
                 : "unknown op \"" + op + "\" (query | scenario | ping)");
  return p;
}

std::string execute_and_render(Session& session, const Parsed& p,
                               std::size_t threads) {
  switch (p.op) {
    case Parsed::Op::kPing: {
      io::Json pong;
      pong.set("pong", true);
      pong.set("threads", static_cast<long long>(threads));
      return render_ok(p.id, pong);
    }
    case Parsed::Op::kQuery: {
      rlc::StatusOr<QueryResult> r = session.submit(p.query);
      return r.is_ok() ? render_ok(p.id, r->to_json())
                       : render_error(p.id, r.status());
    }
    case Parsed::Op::kScenario: {
      rlc::StatusOr<scenario::ScenarioResult> r =
          session.run_scenario(p.spec, p.deadline_seconds);
      return r.is_ok() ? render_ok(p.id, r->to_json())
                       : render_error(p.id, r.status());
    }
    case Parsed::Op::kError:
      break;
  }
  return render_error(p.id, p.error);
}

}  // namespace rlc::svc::wire
