#include "wire.hpp"

#include <utility>

#include "rlc/base/version.hpp"
#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"
#include "rlc/obs/exporter.hpp"
#include "rlc/obs/metrics.hpp"
#include "rlc/obs/trace.hpp"
#include "rlc/svc/router.hpp"
#include "rlc/svc/serve.hpp"
#include "rlc/svc/slowlog.hpp"

namespace rlc::svc::wire {

namespace {

io::Json envelope(const RequestId& id) {
  io::Json j;
  j.set("schema", kServeSchemaVersion);
  j.set("version", rlc::version());
  if (const std::string* s = std::get_if<std::string>(&id)) j.set("id", *s);
  if (const double* d = std::get_if<double>(&id)) j.set("id", *d);
  return j;
}

}  // namespace

std::string render_ok(const RequestId& id, const io::Json& result) {
  io::Json j = envelope(id);
  j.set("status", "ok");
  j.set("code", 0);
  j.set("result", result);
  return j.str();
}

std::string render_error(const RequestId& id, const rlc::Status& st) {
  io::Json j = envelope(id);
  j.set("status", st.code_name());
  j.set("code", static_cast<int>(st.code()));
  j.set("message", st.message());
  return j.str();
}

Parsed parse_line(const std::string& line) {
  Parsed p;
  io::JsonValue v;
  try {
    v = io::parse_json(line);
  } catch (const std::exception& e) {
    p.error = rlc::Status::invalid_argument(
        std::string("malformed request line: ") + e.what());
    return p;
  }
  if (v.kind() != io::JsonValue::Kind::kObject) {
    p.error =
        rlc::Status::invalid_argument("request line must be a JSON object");
    return p;
  }
  if (const io::JsonValue* id = v.find("id")) {
    switch (id->kind()) {
      case io::JsonValue::Kind::kString:
        p.id = id->as_string();
        break;
      case io::JsonValue::Kind::kNumber:
        p.id = id->as_number();
        break;
      case io::JsonValue::Kind::kNull:
        break;
      default:
        p.error = rlc::Status::invalid_argument(
            "id must be a string or a number");
        return p;
    }
  }
  const std::string op = v.string_or("op", "");
  if (op == "ping") {
    p.op = Parsed::Op::kPing;
    return p;
  }
  if (op == "metrics") {
    p.format = v.string_or("format", "prometheus");
    if (p.format != "prometheus" && p.format != "json" &&
        p.format != "text") {
      p.error = rlc::Status::invalid_argument(
          "metrics format \"" + p.format +
          "\" unknown (prometheus | json | text)");
      return p;
    }
    p.op = Parsed::Op::kMetrics;
    return p;
  }
  if (op == "stats") {
    p.op = Parsed::Op::kStats;
    return p;
  }
  if (op == "trace") {
    p.trace_action = v.string_or("action", "");
    if (p.trace_action != "start" && p.trace_action != "stop" &&
        p.trace_action != "dump") {
      p.error = rlc::Status::invalid_argument(
          p.trace_action.empty()
              ? std::string("trace request needs an \"action\" field "
                            "(start | stop | dump)")
              : "trace action \"" + p.trace_action +
                    "\" unknown (start | stop | dump)");
      return p;
    }
    p.chrome = v.bool_or("chrome", false);
    p.op = Parsed::Op::kTrace;
    return p;
  }
  if (op == "query") {
    rlc::StatusOr<QueryRequest> req = QueryRequest::from_json(v);
    if (!req.is_ok()) {
      p.error = req.status();
      return p;
    }
    p.op = Parsed::Op::kQuery;
    p.query = std::move(*req);
    return p;
  }
  if (op == "scenario") {
    const io::JsonValue* spec = v.find("spec");
    if (!spec) {
      p.error = rlc::Status::invalid_argument(
          "scenario request needs a \"spec\" object");
      return p;
    }
    rlc::StatusOr<scenario::ScenarioSpec> parsed =
        scenario::ScenarioSpec::from_json(*spec);
    if (!parsed.is_ok()) {
      p.error = parsed.status();
      return p;
    }
    p.op = Parsed::Op::kScenario;
    p.spec = std::move(*parsed);
    if (const io::JsonValue* d = v.find("deadline_seconds");
        d && !d->is_null()) {
      try {
        p.deadline_seconds = d->as_number();
      } catch (const std::exception&) {
        p.error =
            rlc::Status::invalid_argument("deadline_seconds must be a number");
        p.op = Parsed::Op::kError;
      }
    }
    return p;
  }
  p.error = rlc::Status::invalid_argument(
      op.empty()
          ? std::string("request needs an \"op\" field")
          : "unknown op \"" + op +
                "\" (query | scenario | ping | metrics | stats | trace)");
  return p;
}

namespace {

io::Json cache_stats_json(const LruCache<QueryResult>::Stats& cs) {
  io::Json j;
  j.set("hits", static_cast<long long>(cs.hits));
  j.set("misses", static_cast<long long>(cs.misses));
  j.set("evictions", static_cast<long long>(cs.evictions));
  j.set("size", static_cast<long long>(cs.size));
  j.set("capacity", static_cast<long long>(cs.capacity));
  return j;
}

std::string render_metrics(const Parsed& p) {
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  io::Json result;
  result.set("format", p.format);
  if (p.format == "json") {
    result.set("metrics", obs::Exporter::json(snap));
  } else if (p.format == "text") {
    result.set("content_type", "text/plain");
    result.set("body", obs::Exporter::text(snap));
  } else {
    result.set("content_type", obs::Exporter::content_type());
    result.set("body", obs::Exporter::prometheus(snap));
  }
  return render_ok(p.id, result);
}

std::string render_stats(const Parsed& p, const AdminEnv& env) {
  io::Json result;
  if (env.server_block) result.set("server", env.server_block());
  io::JsonArray shards;
  if (env.router != nullptr) {
    for (std::size_t i = 0; i < env.router->shards(); ++i) {
      io::Json s;
      s.set("shard", static_cast<long long>(i));
      s.set("threads",
            static_cast<long long>(env.router->shard(i).threads()));
      s.set("cache", cache_stats_json(env.router->shard(i).cache_stats()));
      shards.push(s);
    }
  } else if (env.session != nullptr) {
    io::Json s;
    s.set("shard", 0);
    s.set("threads", static_cast<long long>(env.session->threads()));
    s.set("cache", cache_stats_json(env.session->cache_stats()));
    shards.push(s);
  }
  result.set("shards", shards);
  const obs::Tracer& tracer = obs::Tracer::global();
  io::Json trace;
  trace.set("enabled", obs::Tracer::enabled());
  trace.set("span_count", static_cast<long long>(tracer.span_count()));
  trace.set("dropped", static_cast<long long>(tracer.dropped()));
  trace.set("ring_capacity", static_cast<long long>(tracer.ring_capacity()));
  result.set("trace", trace);
  result.set("slow_queries", SlowQueryLog::global().to_json());
  return render_ok(p.id, result);
}

std::string render_trace(const Parsed& p) {
  obs::Tracer& tracer = obs::Tracer::global();
  io::Json result;
  if (p.trace_action == "start") {
    tracer.enable();
    result.set("tracing", true);
  } else if (p.trace_action == "stop") {
    tracer.disable();
    result.set("tracing", false);
  } else {  // dump
    result.set("tracing", obs::Tracer::enabled());
    result.set("rollup", tracer.rollup_json());
    if (p.chrome) result.set("chrome_trace", tracer.chrome_trace_json());
  }
  return render_ok(p.id, result);
}

}  // namespace

std::string execute_admin(const Parsed& p, const AdminEnv& env) {
  switch (p.op) {
    case Parsed::Op::kMetrics:
      return render_metrics(p);
    case Parsed::Op::kStats:
      return render_stats(p, env);
    case Parsed::Op::kTrace:
      return render_trace(p);
    default:
      return render_error(
          p.id, rlc::Status::internal("execute_admin on a non-admin op"));
  }
}

std::string execute_and_render(Session& session, const Parsed& p,
                               std::size_t threads) {
  switch (p.op) {
    case Parsed::Op::kPing: {
      io::Json pong;
      pong.set("pong", true);
      pong.set("threads", static_cast<long long>(threads));
      return render_ok(p.id, pong);
    }
    case Parsed::Op::kQuery: {
      rlc::StatusOr<QueryResult> r = session.submit(p.query);
      return r.is_ok() ? render_ok(p.id, r->to_json())
                       : render_error(p.id, r.status());
    }
    case Parsed::Op::kScenario: {
      rlc::StatusOr<scenario::ScenarioResult> r =
          session.run_scenario(p.spec, p.deadline_seconds);
      return r.is_ok() ? render_ok(p.id, r->to_json())
                       : render_error(p.id, r.status());
    }
    case Parsed::Op::kMetrics:
    case Parsed::Op::kStats:
    case Parsed::Op::kTrace: {
      AdminEnv env;
      env.session = &session;
      return execute_admin(p, env);
    }
    case Parsed::Op::kError:
      break;
  }
  return render_error(p.id, p.error);
}

}  // namespace rlc::svc::wire
