#include "rlc/svc/serve.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "rlc/base/version.hpp"
#include "rlc/io/json.hpp"
#include "rlc/io/json_reader.hpp"

namespace rlc::svc {

namespace {

/// Echoed request id: absent, string, or number (other kinds are rejected
/// as malformed so a response can always be correlated unambiguously).
using RequestId = std::variant<std::monostate, std::string, double>;

io::Json envelope(const RequestId& id) {
  io::Json j;
  j.set("schema", kServeSchemaVersion);
  j.set("version", rlc::version());
  if (const std::string* s = std::get_if<std::string>(&id)) j.set("id", *s);
  if (const double* d = std::get_if<double>(&id)) j.set("id", *d);
  return j;
}

std::string render_ok(const RequestId& id, const io::Json& result) {
  io::Json j = envelope(id);
  j.set("status", "ok");
  j.set("code", 0);
  j.set("result", result);
  return j.str();
}

std::string render_error(const RequestId& id, const rlc::Status& st) {
  io::Json j = envelope(id);
  j.set("status", st.code_name());
  j.set("code", static_cast<int>(st.code()));
  j.set("message", st.message());
  return j.str();
}

/// One parsed request line, ready to execute.
struct Parsed {
  enum class Op { kQuery, kScenario, kPing, kError };
  Op op = Op::kError;
  RequestId id;
  QueryRequest query;
  scenario::ScenarioSpec spec;
  double deadline_seconds = Session::kNoDeadline;
  rlc::Status error;  ///< op == kError: what was wrong with the line
};

Parsed parse_line(const std::string& line) {
  Parsed p;
  io::JsonValue v;
  try {
    v = io::parse_json(line);
  } catch (const std::exception& e) {
    p.error = rlc::Status::invalid_argument(
        std::string("malformed request line: ") + e.what());
    return p;
  }
  if (v.kind() != io::JsonValue::Kind::kObject) {
    p.error =
        rlc::Status::invalid_argument("request line must be a JSON object");
    return p;
  }
  if (const io::JsonValue* id = v.find("id")) {
    switch (id->kind()) {
      case io::JsonValue::Kind::kString:
        p.id = id->as_string();
        break;
      case io::JsonValue::Kind::kNumber:
        p.id = id->as_number();
        break;
      case io::JsonValue::Kind::kNull:
        break;
      default:
        p.error = rlc::Status::invalid_argument(
            "id must be a string or a number");
        return p;
    }
  }
  const std::string op = v.string_or("op", "");
  if (op == "ping") {
    p.op = Parsed::Op::kPing;
    return p;
  }
  if (op == "query") {
    rlc::StatusOr<QueryRequest> req = QueryRequest::from_json(v);
    if (!req.is_ok()) {
      p.error = req.status();
      return p;
    }
    p.op = Parsed::Op::kQuery;
    p.query = std::move(*req);
    return p;
  }
  if (op == "scenario") {
    const io::JsonValue* spec = v.find("spec");
    if (!spec) {
      p.error = rlc::Status::invalid_argument(
          "scenario request needs a \"spec\" object");
      return p;
    }
    rlc::StatusOr<scenario::ScenarioSpec> parsed =
        scenario::ScenarioSpec::from_json(*spec);
    if (!parsed.is_ok()) {
      p.error = parsed.status();
      return p;
    }
    p.op = Parsed::Op::kScenario;
    p.spec = std::move(*parsed);
    if (const io::JsonValue* d = v.find("deadline_seconds");
        d && !d->is_null()) {
      try {
        p.deadline_seconds = d->as_number();
      } catch (const std::exception&) {
        p.error =
            rlc::Status::invalid_argument("deadline_seconds must be a number");
        p.op = Parsed::Op::kError;
      }
    }
    return p;
  }
  p.error = rlc::Status::invalid_argument(
      op.empty() ? std::string("request needs an \"op\" field")
                 : "unknown op \"" + op + "\" (query | scenario | ping)");
  return p;
}

}  // namespace

Server::Server(Session& session, const ServeOptions& opts)
    : session_(session), opts_(opts) {}

std::string Server::handle_line(const std::string& line) {
  std::vector<std::string> out = handle_lines({line});
  return out.front();
}

std::vector<std::string> Server::handle_lines(
    const std::vector<std::string>& lines) {
  const std::size_t n = lines.size();
  std::vector<Parsed> parsed;
  parsed.reserve(n);
  for (const std::string& line : lines) parsed.push_back(parse_line(line));

  std::vector<std::string> out(n);

  // Queries in the block run as batches (input order within each batch).
  std::vector<std::size_t> query_idx;
  for (std::size_t i = 0; i < n; ++i) {
    if (parsed[i].op == Parsed::Op::kQuery) query_idx.push_back(i);
  }
  const std::size_t max_batch =
      opts_.max_batch > 0 ? static_cast<std::size_t>(opts_.max_batch) : 1;
  for (std::size_t begin = 0; begin < query_idx.size(); begin += max_batch) {
    const std::size_t end =
        std::min(begin + max_batch, query_idx.size());
    std::vector<QueryRequest> reqs;
    reqs.reserve(end - begin);
    for (std::size_t j = begin; j < end; ++j) {
      reqs.push_back(parsed[query_idx[j]].query);
    }
    std::vector<rlc::StatusOr<QueryResult>> results =
        session_.submit_batch(reqs);
    for (std::size_t j = begin; j < end; ++j) {
      const Parsed& p = parsed[query_idx[j]];
      const rlc::StatusOr<QueryResult>& r = results[j - begin];
      out[query_idx[j]] = r.is_ok() ? render_ok(p.id, r->to_json())
                                    : render_error(p.id, r.status());
    }
  }

  // Everything else runs in place.
  for (std::size_t i = 0; i < n; ++i) {
    Parsed& p = parsed[i];
    switch (p.op) {
      case Parsed::Op::kQuery:
        break;  // answered above
      case Parsed::Op::kPing: {
        io::Json pong;
        pong.set("pong", true);
        pong.set("threads", static_cast<long long>(session_.threads()));
        out[i] = render_ok(p.id, pong);
        break;
      }
      case Parsed::Op::kScenario: {
        rlc::StatusOr<scenario::ScenarioResult> r =
            session_.run_scenario(p.spec, p.deadline_seconds);
        out[i] = r.is_ok() ? render_ok(p.id, r->to_json())
                           : render_error(p.id, r.status());
        break;
      }
      case Parsed::Op::kError:
        out[i] = render_error(p.id, p.error);
        break;
    }
  }
  return out;
}

}  // namespace rlc::svc
