#include "rlc/svc/serve.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "wire.hpp"

namespace rlc::svc {

Server::Server(Session& session, const ServeOptions& opts)
    : session_(session), opts_(opts) {}

std::string Server::handle_line(const std::string& line) {
  std::vector<std::string> out = handle_lines({line});
  return out.front();
}

std::vector<std::string> Server::handle_lines(
    const std::vector<std::string>& lines) {
  const std::size_t n = lines.size();
  std::vector<wire::Parsed> parsed;
  parsed.reserve(n);
  for (const std::string& line : lines) {
    parsed.push_back(wire::parse_line(line));
  }

  std::vector<std::string> out(n);

  // Queries in the block run as batches (input order within each batch).
  std::vector<std::size_t> query_idx;
  for (std::size_t i = 0; i < n; ++i) {
    if (parsed[i].op == wire::Parsed::Op::kQuery) query_idx.push_back(i);
  }
  const std::size_t max_batch =
      opts_.max_batch > 0 ? static_cast<std::size_t>(opts_.max_batch) : 1;
  for (std::size_t begin = 0; begin < query_idx.size(); begin += max_batch) {
    const std::size_t end =
        std::min(begin + max_batch, query_idx.size());
    std::vector<QueryRequest> reqs;
    reqs.reserve(end - begin);
    for (std::size_t j = begin; j < end; ++j) {
      reqs.push_back(parsed[query_idx[j]].query);
    }
    std::vector<rlc::StatusOr<QueryResult>> results =
        session_.submit_batch(reqs);
    for (std::size_t j = begin; j < end; ++j) {
      const wire::Parsed& p = parsed[query_idx[j]];
      const rlc::StatusOr<QueryResult>& r = results[j - begin];
      out[query_idx[j]] = r.is_ok()
                              ? wire::render_ok(p.id, r->to_json())
                              : wire::render_error(p.id, r.status());
    }
  }

  // Everything else runs in place.
  for (std::size_t i = 0; i < n; ++i) {
    if (parsed[i].op == wire::Parsed::Op::kQuery) continue;  // answered above
    out[i] = wire::execute_and_render(session_, parsed[i], session_.threads());
  }
  return out;
}

}  // namespace rlc::svc
