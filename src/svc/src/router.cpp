#include "rlc/svc/router.hpp"

#include <thread>
#include <utility>

namespace rlc::svc {

ShardRouter::ShardRouter(const RouterOptions& opts) {
  const std::size_t n = opts.shards > 0 ? opts.shards : 1;
  sessions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SessionOptions sopts;
    sopts.threads = opts.threads_per_shard;
    sopts.cache_capacity = opts.cache_capacity;
    sessions_.push_back(std::make_unique<Session>(sopts));
  }
}

ShardRouter::~ShardRouter() = default;

std::size_t ShardRouter::threads() const {
  std::size_t total = 0;
  for (const auto& s : sessions_) total += s->threads();
  return total;
}

std::size_t ShardRouter::placement(std::uint64_t key_hash,
                                   std::size_t shards) {
  // Jump Consistent Hash (Lamping & Veach, 2014): O(log n), no table, and
  // growing the shard count moves only the minimal fraction of keys.
  if (shards <= 1) return 0;
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < static_cast<std::int64_t>(shards)) {
    b = j;
    key_hash = key_hash * 2862933555777941757ULL + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(std::int64_t{1} << 31) /
         static_cast<double>((key_hash >> 33) + 1)));
  }
  return static_cast<std::size_t>(b);
}

std::size_t ShardRouter::shard_of(const QueryRequest& req) const {
  return placement(req.cache_hash(), sessions_.size());
}

rlc::StatusOr<QueryResult> ShardRouter::submit(const QueryRequest& req) {
  return sessions_[shard_of(req)]->submit(req);
}

std::vector<rlc::StatusOr<QueryResult>> ShardRouter::submit_batch(
    const std::vector<QueryRequest>& reqs) {
  const std::size_t n = reqs.size();
  const std::size_t s = sessions_.size();
  if (n == 0) return {};
  if (s == 1) return sessions_[0]->submit_batch(reqs);

  // Partition by home shard, remembering where each request came from.
  std::vector<std::vector<QueryRequest>> parts(s);
  std::vector<std::vector<std::size_t>> origin(s);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t home = shard_of(reqs[i]);
    parts[home].push_back(reqs[i]);
    origin[home].push_back(i);
  }

  // One helper thread per non-empty shard except the last, which runs on
  // the calling thread — shards solve their sub-batches concurrently, each
  // on its own pool.  Per-request determinism makes the reassembly order
  // independent of which shard finishes first.
  std::vector<std::vector<rlc::StatusOr<QueryResult>>> shard_out(s);
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < s; ++j) {
    if (!parts[j].empty()) active.push_back(j);
  }
  std::vector<std::thread> helpers;
  helpers.reserve(active.size() > 0 ? active.size() - 1 : 0);
  for (std::size_t a = 0; a + 1 < active.size(); ++a) {
    const std::size_t j = active[a];
    helpers.emplace_back([this, j, &parts, &shard_out] {
      shard_out[j] = sessions_[j]->submit_batch(parts[j]);
    });
  }
  if (!active.empty()) {
    const std::size_t j = active.back();
    shard_out[j] = sessions_[j]->submit_batch(parts[j]);
  }
  for (std::thread& t : helpers) t.join();

  std::vector<rlc::StatusOr<QueryResult>> out(
      n, rlc::Status::internal("request slot never ran"));
  for (std::size_t j = 0; j < s; ++j) {
    for (std::size_t k = 0; k < origin[j].size(); ++k) {
      out[origin[j][k]] = std::move(shard_out[j][k]);
    }
  }
  return out;
}

}  // namespace rlc::svc
