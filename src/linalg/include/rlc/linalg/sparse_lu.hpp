#pragma once

/// \file sparse_lu.hpp
/// Left-looking (Gilbert–Peierls) sparse LU with threshold partial pivoting,
/// in the style of CSparse's cs_lu.  This is the workhorse behind the MNA
/// circuit solver: transient analysis refactorizes at every Newton iteration,
/// and the factorization cost is proportional to the number of floating-point
/// operations actually performed (important for the ladder-structured RLC
/// circuits in this repo, which factor with almost no fill-in).

#include <vector>

#include "rlc/linalg/sparse.hpp"

namespace rlc::linalg {

class SparseLU {
 public:
  /// Factor A.  `pivot_tol` in (0, 1]: 1.0 = full partial pivoting,
  /// smaller values prefer sparsity-preserving diagonal pivots.
  /// Throws std::runtime_error if A is singular to working precision.
  explicit SparseLU(const CscMatrix& A, double pivot_tol = 1.0);

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Numeric-only refactorization: reuse the pivot order and the symbolic
  /// pattern of the original factorization for a matrix with the SAME
  /// sparsity pattern but new values (each Newton iteration of a transient
  /// run).  Skips the DFS, the pivot search and all allocation.  Returns
  /// false — leaving the factors unusable — if a pivot shrinks below
  /// `pivot_floor` times its column's magnitude, in which case the caller
  /// should factor from scratch to re-pivot.
  bool refactor(const CscMatrix& A, double pivot_floor = 1e-10);

  int size() const { return n_; }
  int l_nnz() const { return static_cast<int>(l_values_.size()); }
  int u_nnz() const { return static_cast<int>(u_values_.size()); }

 private:
  int n_ = 0;
  // L (unit diagonal stored explicitly) and U (diagonal last in column).
  std::vector<int> l_colptr_, l_rowidx_;
  std::vector<double> l_values_;
  std::vector<int> u_colptr_, u_rowidx_;
  std::vector<double> u_values_;
  std::vector<int> pinv_;  // row i of A is row pinv_[i] of PA
  // Cached symbolic information for refactor(): per-column reach pattern in
  // topological order (original row indices), the chosen pivot row, and L's
  // row indices in original coordinates.
  std::vector<int> pat_ptr_, pat_idx_;
  std::vector<int> pivot_row_;
  std::vector<int> l_rowidx_orig_;
};

}  // namespace rlc::linalg
