#pragma once

/// \file lu.hpp
/// Dense LU factorization with partial (row) pivoting and solve, for double
/// and complex<double>.  Throws std::runtime_error on numerically singular
/// input.

#include <complex>
#include <vector>

#include "rlc/linalg/matrix.hpp"

namespace rlc::linalg {

/// In-place LU with partial pivoting.  After construction, solve() may be
/// called repeatedly for multiple right-hand sides.
template <typename T>
class LU {
 public:
  /// Factor A (copied).  Throws std::runtime_error if singular.
  explicit LU(const Matrix<T>& A);

  /// Solve A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
};

extern template class LU<double>;
extern template class LU<std::complex<double>>;

using LUD = LU<double>;
using LUC = LU<std::complex<double>>;

}  // namespace rlc::linalg
