#pragma once

/// \file eigen.hpp
/// Symmetric eigensolver (cyclic Jacobi) and simultaneous diagonalization of
/// a commuting pair, sized for the small (2-8 conductor) per-unit-length
/// L/C matrices of coupled transmission lines.  Jacobi is the right tool
/// here: unconditionally stable, orthonormal vectors to machine precision,
/// and for n <= 8 it beats any blocked algorithm on constant factors.

#include <vector>

#include "rlc/linalg/matrix.hpp"

namespace rlc::linalg {

/// Eigendecomposition A = W diag(values) W^T of a symmetric matrix.
/// Columns of `vectors` are orthonormal eigenvectors; `values[j]` is the
/// eigenvalue of column j.  Eigenvalues are sorted ascending.
struct EigenResult {
  std::vector<double> values;
  MatrixD vectors;
};

/// Cyclic Jacobi for a symmetric matrix.  Throws std::invalid_argument if
/// `a` is not square or not symmetric (relative asymmetry > 1e-12), and
/// std::runtime_error if the off-diagonal norm fails to fall below
/// tol * ||A||_F within `max_sweeps` full sweeps (does not happen for
/// genuine symmetric input).
EigenResult jacobi_eigensolve(const MatrixD& a, double tol = 1e-15,
                              int max_sweeps = 64);

/// Simultaneous diagonalization of a commuting symmetric pair: returns an
/// orthonormal W with W^T A W = diag(a_values) and W^T B W = diag(b_values).
///
/// Algorithm: eigendecompose A; within each cluster of (near-)degenerate
/// A-eigenvalues, the eigenbasis is only determined up to rotation, so a
/// sub-Jacobi pass on the projected block of B picks the rotation that
/// diagonalizes B too.  Finally the residual off-diagonals of W^T B W are
/// checked against tol * ||B||_F; failure means [A, B] != 0 and a
/// std::runtime_error names the offending residual.  `a_values` stay sorted
/// ascending; `b_values` follow the same column order.
struct SimultaneousDiagResult {
  std::vector<double> a_values;
  std::vector<double> b_values;
  MatrixD vectors;  ///< shared orthonormal eigenvector columns
};

SimultaneousDiagResult simultaneous_diagonalize(const MatrixD& a,
                                                const MatrixD& b,
                                                double tol = 1e-10);

}  // namespace rlc::linalg
