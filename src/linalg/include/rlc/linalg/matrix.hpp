#pragma once

/// \file matrix.hpp
/// Dense row-major matrix over double or complex<double>.  Used by the BEM
/// capacitance extractor (dense boundary-element systems) and by small MNA
/// problems; large circuit matrices go through the sparse path instead.

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rlc::linalg {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  const T& operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked access.
  T& at(std::size_t i, std::size_t j) {
    check(i, j);
    return data_[i * cols_ + j];
  }
  const T& at(std::size_t i, std::size_t j) const {
    check(i, j);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// y = A * x.
  std::vector<T> multiply(const std::vector<T>& x) const {
    if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc{};
      for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
      y[i] = acc;
    }
    return y;
  }

  /// Fill with zero.
  void set_zero() { std::fill(data_.begin(), data_.end(), T{}); }

 private:
  void check(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix: index out of range");
  }
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;

}  // namespace rlc::linalg
