#pragma once

/// \file sparse.hpp
/// Sparse matrix support: triplet (COO) assembly and compressed sparse
/// column storage.  Circuit (MNA) matrices are assembled as triplets —
/// device stamps simply append — and compressed once per topology.

#include <cstddef>
#include <vector>

namespace rlc::linalg {

/// One (row, col, value) entry; duplicates are summed on compression,
/// matching the semantics of MNA device stamping.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Compressed sparse column matrix.
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Build from triplets, summing duplicates and dropping explicit zeros
  /// only if `drop_zeros` (MNA keeps them so the pattern stays stable
  /// across refactorizations).
  static CscMatrix from_triplets(int rows, int cols,
                                 const std::vector<Triplet>& triplets,
                                 bool drop_zeros = false);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return static_cast<int>(values_.size()); }

  const std::vector<int>& col_ptr() const { return col_ptr_; }
  const std::vector<int>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// y = A * x (dense vector).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Value at (i, j); 0 if not stored (linear scan of column j).
  double at(int i, int j) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> col_ptr_;   // size cols+1
  std::vector<int> row_idx_;   // size nnz, sorted within each column
  std::vector<double> values_; // size nnz
};

/// Caches the triplet-to-CSC slot mapping for repeated assemblies with an
/// identical triplet structure — the classic SPICE "matrix pointer"
/// optimization.  The first compress() builds the CSC matrix and records,
/// for every triplet, the value slot it accumulates into; subsequent calls
/// with the same (row, col) sequence skip sorting entirely and just scatter
/// values.  A structural change is detected and triggers a rebuild.
class TripletCompressor {
 public:
  /// Compress `triplets` into the cached CSC matrix and return it.  The
  /// reference stays valid until the next call.
  const CscMatrix& compress(int rows, int cols,
                            const std::vector<Triplet>& triplets);

  /// True if the last compress() reused the cached mapping.
  bool reused() const { return reused_; }

 private:
  bool structure_matches(int rows, int cols,
                         const std::vector<Triplet>& triplets) const;
  CscMatrix matrix_;
  std::vector<int> slot_;       // triplet index -> value slot
  std::vector<int> sig_rows_;   // structure signature
  std::vector<int> sig_cols_;
  bool built_ = false;
  bool reused_ = false;
};

}  // namespace rlc::linalg
