#include "rlc/linalg/sparse.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlc::linalg {

CscMatrix CscMatrix::from_triplets(int rows, int cols,
                                   const std::vector<Triplet>& triplets,
                                   bool drop_zeros) {
  CscMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  for (const auto& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      throw std::out_of_range("CscMatrix::from_triplets: index out of range");
    }
  }
  // Count entries per column (before dedup).
  std::vector<int> count(cols + 1, 0);
  for (const auto& t : triplets) ++count[t.col + 1];
  std::vector<int> start(cols + 1, 0);
  for (int j = 0; j < cols; ++j) start[j + 1] = start[j] + count[j + 1];
  // Scatter into per-column buckets.
  std::vector<int> pos(start.begin(), start.end() - 1);
  std::vector<int> ri(triplets.size());
  std::vector<double> vx(triplets.size());
  for (const auto& t : triplets) {
    const int p = pos[t.col]++;
    ri[p] = t.row;
    vx[p] = t.value;
  }
  // Sort each column by row and sum duplicates.
  m.col_ptr_.assign(cols + 1, 0);
  std::vector<std::pair<int, double>> colbuf;
  for (int j = 0; j < cols; ++j) {
    colbuf.clear();
    for (int p = start[j]; p < start[j + 1]; ++p) colbuf.emplace_back(ri[p], vx[p]);
    std::sort(colbuf.begin(), colbuf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < colbuf.size();) {
      int r = colbuf[i].first;
      double sum = 0.0;
      std::size_t k = i;
      while (k < colbuf.size() && colbuf[k].first == r) sum += colbuf[k++].second;
      if (!(drop_zeros && sum == 0.0)) {
        m.row_idx_.push_back(r);
        m.values_.push_back(sum);
      }
      i = k;
    }
    m.col_ptr_[j + 1] = static_cast<int>(m.row_idx_.size());
  }
  return m;
}

std::vector<double> CscMatrix::multiply(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != cols_) {
    throw std::invalid_argument("CscMatrix::multiply: size mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (int j = 0; j < cols_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (int p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      y[row_idx_[p]] += values_[p] * xj;
    }
  }
  return y;
}

bool TripletCompressor::structure_matches(
    int rows, int cols, const std::vector<Triplet>& triplets) const {
  if (!built_ || rows != matrix_.rows() || cols != matrix_.cols() ||
      triplets.size() != sig_rows_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    if (triplets[i].row != sig_rows_[i] || triplets[i].col != sig_cols_[i]) {
      return false;
    }
  }
  return true;
}

const CscMatrix& TripletCompressor::compress(
    int rows, int cols, const std::vector<Triplet>& triplets) {
  if (structure_matches(rows, cols, triplets)) {
    auto& vals = matrix_.values();
    std::fill(vals.begin(), vals.end(), 0.0);
    for (std::size_t i = 0; i < triplets.size(); ++i) {
      vals[slot_[i]] += triplets[i].value;
    }
    reused_ = true;
    return matrix_;
  }
  // Rebuild: compress normally, then derive the triplet -> slot mapping by
  // binary search within each (sorted) column.
  matrix_ = CscMatrix::from_triplets(rows, cols, triplets);
  slot_.resize(triplets.size());
  sig_rows_.resize(triplets.size());
  sig_cols_.resize(triplets.size());
  const auto& cp = matrix_.col_ptr();
  const auto& ri = matrix_.row_idx();
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    const int c = triplets[i].col;
    const auto begin = ri.begin() + cp[c];
    const auto end = ri.begin() + cp[c + 1];
    const auto it = std::lower_bound(begin, end, triplets[i].row);
    slot_[i] = static_cast<int>(it - ri.begin());
    sig_rows_[i] = triplets[i].row;
    sig_cols_[i] = triplets[i].col;
  }
  built_ = true;
  reused_ = false;
  return matrix_;
}

double CscMatrix::at(int i, int j) const {
  if (i < 0 || i >= rows_ || j < 0 || j >= cols_) {
    throw std::out_of_range("CscMatrix::at: index out of range");
  }
  for (int p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
    if (row_idx_[p] == i) return values_[p];
  }
  return 0.0;
}

}  // namespace rlc::linalg
