#include "rlc/linalg/matrix.hpp"

// Matrix<T> is fully inline; this translation unit pins explicit
// instantiations so common instantiations compile once.
namespace rlc::linalg {
template class Matrix<double>;
template class Matrix<std::complex<double>>;
}  // namespace rlc::linalg
