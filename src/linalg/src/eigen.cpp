#include "rlc/linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace rlc::linalg {

namespace {

double frobenius(const MatrixD& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * a(i, j);
  return std::sqrt(acc);
}

double off_diagonal_norm(const MatrixD& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) acc += a(i, j) * a(i, j);
  return std::sqrt(acc);
}

void require_symmetric(const MatrixD& a, const char* who) {
  if (a.rows() != a.cols())
    throw std::invalid_argument(std::string(who) + ": matrix must be square");
  if (a.rows() == 0)
    throw std::invalid_argument(std::string(who) + ": matrix must be nonempty");
  const double scale = std::max(frobenius(a), 1.0);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      if (std::abs(a(i, j) - a(j, i)) > 1e-12 * scale)
        throw std::invalid_argument(std::string(who) +
                                    ": matrix must be symmetric");
}

/// One Jacobi rotation zeroing a(p,q), applied in place to `a` (both sides)
/// and accumulated into the columns of `v`.
void jacobi_rotate(MatrixD& a, MatrixD& v, std::size_t p, std::size_t q) {
  const double apq = a(p, q);
  if (apq == 0.0) return;
  const double tau = (a(q, q) - a(p, p)) / (2.0 * apq);
  // Stable root of t^2 + 2 tau t - 1 = 0 with |t| <= 1.
  const double t = (tau >= 0.0)
                       ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                       : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    const double akp = a(k, p);
    const double akq = a(k, q);
    a(k, p) = c * akp - s * akq;
    a(k, q) = s * akp + c * akq;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double apk = a(p, k);
    const double aqk = a(q, k);
    a(p, k) = c * apk - s * aqk;
    a(q, k) = s * apk + c * aqk;
  }
  a(p, q) = 0.0;
  a(q, p) = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double vkp = v(k, p);
    const double vkq = v(k, q);
    v(k, p) = c * vkp - s * vkq;
    v(k, q) = s * vkp + c * vkq;
  }
}

MatrixD identity(std::size_t n) {
  MatrixD id(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) id(i, i) = 1.0;
  return id;
}

/// Jacobi on a working copy, accumulating rotations into `v` (which may
/// already hold a basis -- used by the cluster pass).
std::vector<double> jacobi_core(MatrixD work, MatrixD& v, double tol,
                                int max_sweeps, const char* who) {
  const std::size_t n = work.rows();
  const double scale = std::max(frobenius(work), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(work) <= tol * scale) {
      std::vector<double> values(n);
      for (std::size_t i = 0; i < n; ++i) values[i] = work(i, i);
      return values;
    }
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) jacobi_rotate(work, v, p, q);
  }
  if (off_diagonal_norm(work) <= tol * scale) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = work(i, i);
    return values;
  }
  throw std::runtime_error(std::string(who) + ": Jacobi failed to converge");
}

void sort_columns_by_value(std::vector<double>& values, MatrixD& vectors) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return values[i] < values[j];
  });
  std::vector<double> sorted_values(n);
  MatrixD sorted_vectors(vectors.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = values[order[j]];
    for (std::size_t i = 0; i < vectors.rows(); ++i)
      sorted_vectors(i, j) = vectors(i, order[j]);
  }
  values = std::move(sorted_values);
  vectors = std::move(sorted_vectors);
}

}  // namespace

EigenResult jacobi_eigensolve(const MatrixD& a, double tol, int max_sweeps) {
  require_symmetric(a, "jacobi_eigensolve");
  EigenResult r;
  r.vectors = identity(a.rows());
  r.values = jacobi_core(a, r.vectors, tol, max_sweeps, "jacobi_eigensolve");
  sort_columns_by_value(r.values, r.vectors);
  return r;
}

SimultaneousDiagResult simultaneous_diagonalize(const MatrixD& a,
                                                const MatrixD& b,
                                                double tol) {
  require_symmetric(a, "simultaneous_diagonalize");
  require_symmetric(b, "simultaneous_diagonalize");
  if (a.rows() != b.rows())
    throw std::invalid_argument(
        "simultaneous_diagonalize: dimension mismatch");
  const std::size_t n = a.rows();

  EigenResult ea = jacobi_eigensolve(a);
  MatrixD w = std::move(ea.vectors);

  // B projected into the A-eigenbasis: bw = W^T B W.
  MatrixD bw(n, n, 0.0);
  {
    MatrixD tmp(n, n, 0.0);  // B W
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * w(k, j);
        tmp(i, j) = acc;
      }
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += w(k, i) * tmp(k, j);
        bw(i, j) = acc;
      }
  }

  // Within each cluster of degenerate A-eigenvalues the basis is free up to
  // rotation; sub-Jacobi on the corresponding block of bw fixes it so B
  // becomes diagonal there too.
  const double a_scale =
      std::max(std::abs(ea.values.front()), std::abs(ea.values.back()));
  const double cluster_tol = 1e-9 * std::max(a_scale, 1e-300);
  std::size_t lo = 0;
  while (lo < n) {
    std::size_t hi = lo + 1;
    while (hi < n && std::abs(ea.values[hi] - ea.values[hi - 1]) <= cluster_tol)
      ++hi;
    const std::size_t m = hi - lo;
    if (m > 1) {
      MatrixD block(m, m);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j) block(i, j) = bw(lo + i, lo + j);
      // Symmetrize away projection roundoff before rotating.
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = i + 1; j < m; ++j) {
          const double avg = 0.5 * (block(i, j) + block(j, i));
          block(i, j) = avg;
          block(j, i) = avg;
        }
      MatrixD rot = identity(m);
      jacobi_core(block, rot, 1e-15, 64, "simultaneous_diagonalize");
      // Rotate the cluster's columns of W: W[:, lo:hi] *= rot.
      for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row(m);
        for (std::size_t j = 0; j < m; ++j) {
          double acc = 0.0;
          for (std::size_t k = 0; k < m; ++k) acc += w(i, lo + k) * rot(k, j);
          row[j] = acc;
        }
        for (std::size_t j = 0; j < m; ++j) w(i, lo + j) = row[j];
      }
    }
    lo = hi;
  }

  // Recompute W^T B W with the fixed basis and check it is diagonal.
  SimultaneousDiagResult r;
  r.a_values = std::move(ea.values);
  r.b_values.resize(n);
  const double b_scale = std::max(frobenius(b), 1e-300);
  MatrixD tmp(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * w(k, j);
      tmp(i, j) = acc;
    }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += w(k, i) * tmp(k, j);
      if (i == j) {
        r.b_values[i] = acc;
      } else if (std::abs(acc) > tol * b_scale) {
        throw std::runtime_error(
            "simultaneous_diagonalize: matrices do not commute "
            "(residual " +
            std::to_string(std::abs(acc) / b_scale) + ")");
      }
    }
  r.vectors = std::move(w);
  return r;
}

}  // namespace rlc::linalg
