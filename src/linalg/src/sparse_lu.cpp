#include "rlc/linalg/sparse_lu.hpp"

#include <cmath>
#include <stdexcept>

namespace rlc::linalg {

namespace {

/// Non-recursive depth-first search over the graph of the partially built L
/// starting at node j.  Nodes are appended to xi at decreasing `top` in
/// postorder, so xi[top..n-1] read forward is a topological order for the
/// sparse triangular solve.  `pinv[i] >= 0` means row i is already pivotal
/// and corresponds to column pinv[i] of L.
int dfs(int j, const std::vector<int>& lp, const std::vector<int>& li,
        const std::vector<int>& pinv, std::vector<int>& xi, int top,
        std::vector<int>& stack, std::vector<int>& pstack,
        std::vector<char>& marked) {
  int head = 0;
  stack[0] = j;
  while (head >= 0) {
    const int node = stack[head];
    const int jnew = pinv[node];
    if (!marked[node]) {
      marked[node] = 1;
      pstack[head] = (jnew < 0) ? 0 : lp[jnew];
    }
    bool done = true;
    if (jnew >= 0) {
      const int p2 = lp[jnew + 1];
      for (int p = pstack[head]; p < p2; ++p) {
        const int child = li[p];
        if (marked[child]) continue;
        pstack[head] = p + 1;
        stack[++head] = child;
        done = false;
        break;
      }
    }
    if (done) {
      --head;
      xi[--top] = node;
    }
  }
  return top;
}

}  // namespace

SparseLU::SparseLU(const CscMatrix& A, double pivot_tol) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("SparseLU: matrix must be square");
  }
  if (!(pivot_tol > 0.0 && pivot_tol <= 1.0)) {
    throw std::invalid_argument("SparseLU: pivot_tol must be in (0, 1]");
  }
  n_ = A.rows();
  const int n = n_;
  const auto& ap = A.col_ptr();
  const auto& ai = A.row_idx();
  const auto& ax = A.values();

  l_colptr_.assign(n + 1, 0);
  u_colptr_.assign(n + 1, 0);
  pinv_.assign(n, -1);
  pat_ptr_.assign(n + 1, 0);
  pivot_row_.assign(n, -1);

  std::vector<double> x(n, 0.0);
  std::vector<int> xi(n, 0), stack(n, 0), pstack(n, 0);
  std::vector<char> marked(n, 0);

  for (int k = 0; k < n; ++k) {
    // ---- Symbolic: reach of the pattern of A(:,k) over L. ----
    int top = n;
    for (int p = ap[k]; p < ap[k + 1]; ++p) {
      const int i = ai[p];
      if (!marked[i]) top = dfs(i, l_colptr_, l_rowidx_, pinv_, xi, top, stack, pstack, marked);
    }
    // ---- Numeric: x = L \ A(:,k) (unit lower triangular solve). ----
    for (int px = top; px < n; ++px) x[xi[px]] = 0.0;
    for (int p = ap[k]; p < ap[k + 1]; ++p) x[ai[p]] = ax[p];
    for (int px = top; px < n; ++px) {
      const int i = xi[px];
      const int I = pinv_[i];
      if (I < 0) continue;  // row not yet pivotal: contributes to L
      const double xval = x[i];
      if (xval == 0.0) continue;
      // First entry of L column I is the unit diagonal; skip it.
      for (int p = l_colptr_[I] + 1; p < l_colptr_[I + 1]; ++p) {
        x[l_rowidx_[p]] -= l_values_[p] * xval;
      }
    }
    // ---- Pivot selection: largest magnitude among non-pivotal rows,
    //      preferring the diagonal when within pivot_tol of the max. ----
    int ipiv = -1;
    double amax = -1.0;
    for (int px = top; px < n; ++px) {
      const int i = xi[px];
      if (pinv_[i] < 0) {
        const double t = std::abs(x[i]);
        if (t > amax) {
          amax = t;
          ipiv = i;
        }
      }
    }
    if (ipiv < 0 || amax <= 0.0 || !std::isfinite(amax)) {
      throw std::runtime_error("SparseLU: matrix is singular to working precision");
    }
    // Diagonal preference — only valid if row k is actually in this
    // column's pattern (marked): x[k] is stale garbage otherwise.
    if (marked[k] && pinv_[k] < 0 && std::abs(x[k]) >= pivot_tol * amax) {
      ipiv = k;
    }
    const double pivot = x[ipiv];

    // ---- Store U column k (diagonal entry last). ----
    for (int px = top; px < n; ++px) {
      const int i = xi[px];
      if (pinv_[i] >= 0) {
        u_rowidx_.push_back(pinv_[i]);
        u_values_.push_back(x[i]);
      }
    }
    u_rowidx_.push_back(k);
    u_values_.push_back(pivot);
    u_colptr_[k + 1] = static_cast<int>(u_values_.size());

    // ---- Store L column k (unit diagonal first), mark the pivot row. ----
    pinv_[ipiv] = k;
    l_rowidx_.push_back(ipiv);
    l_values_.push_back(1.0);
    for (int px = top; px < n; ++px) {
      const int i = xi[px];
      if (pinv_[i] < 0) {
        l_rowidx_.push_back(i);
        l_values_.push_back(x[i] / pivot);
      }
    }
    l_colptr_[k + 1] = static_cast<int>(l_values_.size());

    // ---- Record the symbolic pattern for refactor(). ----
    pivot_row_[k] = ipiv;
    for (int px = top; px < n; ++px) pat_idx_.push_back(xi[px]);
    pat_ptr_[k + 1] = static_cast<int>(pat_idx_.size());

    // ---- Clear marks for the next column. ----
    for (int px = top; px < n; ++px) marked[xi[px]] = 0;
  }
  // Remap L's row indices into pivot coordinates so L is truly lower
  // triangular with unit diagonal at position (k, k); keep the original
  // coordinates for the numeric-only refactorization path.
  l_rowidx_orig_ = l_rowidx_;
  for (auto& r : l_rowidx_) r = pinv_[r];
}

bool SparseLU::refactor(const CscMatrix& A, double pivot_floor) {
  if (A.rows() != n_ || A.cols() != n_) {
    throw std::invalid_argument("SparseLU::refactor: size mismatch");
  }
  const auto& ap = A.col_ptr();
  const auto& ai = A.row_idx();
  const auto& ax = A.values();
  std::vector<double> x(n_, 0.0);
  std::size_t lpos = 0, upos = 0;
  for (int k = 0; k < n_; ++k) {
    // Scatter A(:,k) over the cached pattern.
    for (int p = pat_ptr_[k]; p < pat_ptr_[k + 1]; ++p) x[pat_idx_[p]] = 0.0;
    for (int p = ap[k]; p < ap[k + 1]; ++p) x[ai[p]] = ax[p];
    // Sparse triangular solve in the cached topological order.
    for (int p = pat_ptr_[k]; p < pat_ptr_[k + 1]; ++p) {
      const int i = pat_idx_[p];
      const int I = pinv_[i];
      if (I >= k) continue;  // not pivotal before column k
      const double xval = x[i];
      if (xval == 0.0) continue;
      for (int q = l_colptr_[I] + 1; q < l_colptr_[I + 1]; ++q) {
        x[l_rowidx_orig_[q]] -= l_values_[q] * xval;
      }
    }
    // Pivot stability check against the column magnitude.
    const double pivot = x[pivot_row_[k]];
    double amax = 0.0;
    for (int p = pat_ptr_[k]; p < pat_ptr_[k + 1]; ++p) {
      const int i = pat_idx_[p];
      if (pinv_[i] >= k) amax = std::max(amax, std::abs(x[i]));
    }
    if (!(std::abs(pivot) > pivot_floor * amax) || pivot == 0.0 ||
        !std::isfinite(pivot)) {
      return false;
    }
    // Overwrite U column k (same order as construction; diagonal last).
    for (int p = pat_ptr_[k]; p < pat_ptr_[k + 1]; ++p) {
      const int i = pat_idx_[p];
      if (pinv_[i] < k) u_values_[upos++] = x[i];
    }
    u_values_[upos++] = pivot;
    // Overwrite L column k (unit diagonal first).
    l_values_[lpos++] = 1.0;
    for (int p = pat_ptr_[k]; p < pat_ptr_[k + 1]; ++p) {
      const int i = pat_idx_[p];
      if (pinv_[i] > k) l_values_[lpos++] = x[i] / pivot;
    }
  }
  return true;
}

std::vector<double> SparseLU::solve(const std::vector<double>& b) const {
  if (static_cast<int>(b.size()) != n_) {
    throw std::invalid_argument("SparseLU::solve: size mismatch");
  }
  std::vector<double> x(n_, 0.0);
  // Row permutation: x[pinv[i]] = b[i].
  for (int i = 0; i < n_; ++i) x[pinv_[i]] = b[i];
  // Forward substitution, L unit lower triangular (diagonal stored first).
  for (int j = 0; j < n_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (int p = l_colptr_[j] + 1; p < l_colptr_[j + 1]; ++p) {
      x[l_rowidx_[p]] -= l_values_[p] * xj;
    }
  }
  // Back substitution, U upper triangular (diagonal stored last per column).
  for (int j = n_ - 1; j >= 0; --j) {
    const int pdiag = u_colptr_[j + 1] - 1;
    x[j] /= u_values_[pdiag];
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (int p = u_colptr_[j]; p < pdiag; ++p) {
      x[u_rowidx_[p]] -= u_values_[p] * xj;
    }
  }
  return x;
}

}  // namespace rlc::linalg
