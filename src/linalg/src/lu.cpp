#include "rlc/linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rlc::linalg {

namespace {
double magnitude(double v) { return std::abs(v); }
double magnitude(const std::complex<double>& v) { return std::abs(v); }
}  // namespace

template <typename T>
LU<T>::LU(const Matrix<T>& A) : n_(A.rows()), lu_(A), perm_(A.rows()) {
  if (A.rows() != A.cols()) throw std::invalid_argument("LU: matrix must be square");
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t piv = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double m = magnitude(lu_(i, k));
      if (m > best) {
        best = m;
        piv = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw std::runtime_error("LU: matrix is singular to working precision");
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n_; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
    }
    const T pivval = lu_(k, k);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const T m = lu_(i, k) / pivval;
      lu_(i, k) = m;
      if (m != T{}) {
        for (std::size_t j = k + 1; j < n_; ++j) lu_(i, j) -= m * lu_(k, j);
      }
    }
  }
}

template <typename T>
std::vector<T> LU<T>::solve(const std::vector<T>& b) const {
  if (b.size() != n_) throw std::invalid_argument("LU::solve: size mismatch");
  std::vector<T> x(n_);
  // Apply permutation, then forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n_; ++i) {
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

template class LU<double>;
template class LU<std::complex<double>>;

}  // namespace rlc::linalg
