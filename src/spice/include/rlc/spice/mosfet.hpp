#pragma once

/// \file mosfet.hpp
/// Level-1 (Shichman–Hodges) MOSFET with channel-length modulation.  Gate
/// capacitances are NOT included here: the repeater abstraction of the paper
/// lumps the input capacitance (c0 k) and the output parasitic (cp k) as
/// linear capacitors, which callers add explicitly (see ringosc::Inverter).
/// This matches the paper's driver model (Section 2.1: "it is assumed that
/// the repeater resistance and output parasitic capacitance is linear").

#include "rlc/spice/device.hpp"

namespace rlc::spice {

enum class MosType { kNmos, kPmos };

/// Level-1 parameters.  `beta` is kp * W / L of the unit device; scale by
/// the repeater size k through the `size` multiplier of the Mosfet device.
struct MosParams {
  MosType type = MosType::kNmos;
  double vt = 0.0;      ///< threshold magnitude [V] (> 0 for both types)
  double beta = 0.0;    ///< transconductance factor kp W/L [A/V^2]
  double lambda = 0.0;  ///< channel-length modulation [1/V]
};

/// Linearization of the drain current at an operating point.
struct MosEval {
  double ids = 0.0;  ///< drain-to-source current (drain terminal, A)
  double gm = 0.0;   ///< d ids / d vgs
  double gds = 0.0;  ///< d ids / d vds
};

/// Evaluate the level-1 drain current and small-signal conductances for any
/// (vgs, vds), handling the reverse (vds < 0) region by source/drain swap
/// and PMOS by voltage mirroring.  Exposed for direct unit testing.
MosEval mos_eval(const MosParams& p, double vgs, double vds);

class Mosfet : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, MosParams params,
         double size = 1.0);
  bool nonlinear() const override { return true; }
  void stamp(const StampContext& ctx, Stamper& st) const override;
  /// Small-signal gm/gds stamps linearized at the DC operating point.
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;
  const MosParams& params() const { return params_; }
  double size() const { return size_; }
  /// Drain current at a given solution vector.
  double drain_current(const std::vector<double>& x) const;

 private:
  NodeId d_, g_, s_;
  MosParams params_;
  double size_;
};

}  // namespace rlc::spice
