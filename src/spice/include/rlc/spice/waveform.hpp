#pragma once

/// \file waveform.hpp
/// Independent-source waveforms in the style of SPICE source specifications:
/// DC, PULSE, PWL and (damped) SIN.

#include <utility>
#include <variant>
#include <vector>

namespace rlc::spice {

/// Constant value.
struct DcSpec {
  double value = 0.0;
};

/// SPICE PULSE(v1 v2 delay rise fall width period): starts at v1, after
/// `delay` ramps to v2 over `rise`, holds for `width`, ramps back over
/// `fall`; repeats with `period` (<= 0 means single-shot).
struct PulseSpec {
  double v1 = 0.0;
  double v2 = 0.0;
  double delay = 0.0;
  double rise = 1e-12;
  double fall = 1e-12;
  double width = 0.0;
  double period = 0.0;
};

/// Piecewise-linear waveform; points must be sorted by time.  Before the
/// first point the first value holds; after the last, the last value holds.
struct PwlSpec {
  std::vector<std::pair<double, double>> points;  ///< (time, value)
};

/// offset + amplitude * exp(-damping (t - delay)) * sin(2 pi freq (t - delay))
/// for t >= delay; `offset` before.
struct SinSpec {
  double offset = 0.0;
  double amplitude = 0.0;
  double freq = 0.0;
  double delay = 0.0;
  double damping = 0.0;
};

using Waveform = std::variant<DcSpec, PulseSpec, PwlSpec, SinSpec>;

/// Waveform value at time t.
double waveform_value(const Waveform& w, double t);

/// Value used for DC analyses (t = 0 for time-varying sources).
double waveform_dc_value(const Waveform& w);

}  // namespace rlc::spice
