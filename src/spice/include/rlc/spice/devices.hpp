#pragma once

/// \file devices.hpp
/// Concrete linear devices: resistor, capacitor, inductor, independent
/// voltage/current sources.  Companion models:
///   capacitor (trap):  i = (2C/dt)(v - v_prev) - i_prev
///   capacitor (BE):    i = (C/dt)(v - v_prev)
///   inductor (trap):   v - (2L/dt) i = -(v_prev + (2L/dt) i_prev)
///   inductor (BE):     v - (L/dt) i  = -(L/dt) i_prev

#include <optional>

#include "rlc/spice/device.hpp"
#include "rlc/spice/waveform.hpp"

namespace rlc::spice {

class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;
  double resistance() const { return ohms_; }
  NodeId node_a() const { return a_; }
  NodeId node_b() const { return b_; }
  /// Current a -> b given a solution vector.
  double current(const std::vector<double>& x) const;

 private:
  NodeId a_, b_;
  double ohms_;
};

class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads,
            std::optional<double> ic = std::nullopt);
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;
  void commit_step(const StampContext& ctx) override;
  void init_history(const StampContext& ctx) override;
  double capacitance() const { return farads_; }

 private:
  double geq(const StampContext& ctx) const;
  double ieq_hist(const StampContext& ctx) const;
  NodeId a_, b_;
  double farads_;
  std::optional<double> ic_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

class Inductor : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double henries,
           std::optional<double> ic = std::nullopt);
  int branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;
  void commit_step(const StampContext& ctx) override;
  void init_history(const StampContext& ctx) override;
  double inductance() const { return henries_; }
  /// Initial branch current for UIC starts.
  double initial_current() const { return ic_.value_or(0.0); }

 private:
  NodeId a_, b_;
  double henries_;
  std::optional<double> ic_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Independent voltage source; positive branch current flows from node p
/// through the source to node n (SPICE convention).
class VSource : public Device {
 public:
  /// `ac_magnitude` is the small-signal drive used by AC analysis
  /// (0 = quiet source, as in SPICE).
  VSource(std::string name, NodeId p, NodeId n, Waveform w,
          double ac_magnitude = 0.0);
  int branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;
  double value_at(double t) const { return waveform_value(waveform_, t); }
  double ac_magnitude() const { return ac_magnitude_; }

 private:
  NodeId p_, n_;
  Waveform waveform_;
  double ac_magnitude_;
};

/// Independent current source driving current from node p through the
/// source into node n.
class ISource : public Device {
 public:
  ISource(std::string name, NodeId p, NodeId n, Waveform w,
          double ac_magnitude = 0.0);
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;

 private:
  NodeId p_, n_;
  Waveform waveform_;
  double ac_magnitude_;
};

}  // namespace rlc::spice
