#pragma once

/// \file netlist_parser.hpp
/// A SPICE-deck front end for the circuit engine.  Supported subset:
///
///   * first line is the title (SPICE convention); `*` starts a comment
///     line; a leading `+` continues the previous card; case-insensitive
///     keywords; engineering suffixes f/p/n/u/m/k/meg/g/t on numbers.
///   * devices:
///       Rxxx n1 n2 value
///       Cxxx n1 n2 value [ic=v0]
///       Lxxx n1 n2 value [ic=i0]
///       Vxxx n+ n- dc v | pulse(v1 v2 td tr tf pw per) |
///                        pwl(t1 v1 t2 v2 ...) | sin(off amp freq [td damp])
///                        [ac mag]
///       Ixxx n+ n- <same source syntax>
///       Exxx p n cp cn gain            (VCVS)
///       Gxxx p n cp cn gm              (VCCS)
///       Kxxx Lname1 Lname2 k           (mutual inductance)
///       Mxxx d g s modelname [m=size]  (level-1 MOSFET, size = multiplier)
///       Xxxx n1 n2 ... subcktname   (subcircuit instance)
///   * cards:
///       .model name nmos|pmos vt=.. beta=.. [lambda=..]
///       .subckt name port1 port2 ... / .ends   (definitions; X expands them,
///           local nodes are namespaced as "Xinst.node", nesting allowed)
///       .tran tstep tstop [tstart]
///       .ac dec points fstart fstop
///       .ic v(node)=value [v(node)=value ...]
///       .end
///
/// Parse errors throw NetlistError carrying the 1-based line number.

#include <optional>
#include <stdexcept>
#include <string>

#include "rlc/spice/ac.hpp"
#include "rlc/spice/circuit.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::spice {

class NetlistError : public std::runtime_error {
 public:
  NetlistError(int line, const std::string& message)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Everything a deck describes.
struct ParsedDeck {
  std::string title;
  Circuit circuit;
  std::optional<TransientOptions> tran;  ///< from .tran (ICs merged in)
  std::optional<AcOptions> ac;           ///< from .ac
};

/// Parse a deck from text.
ParsedDeck parse_netlist(const std::string& text);

/// Parse a deck from a file; throws std::runtime_error if unreadable.
ParsedDeck parse_netlist_file(const std::string& path);

/// Parse one SPICE number with engineering suffix ("2.2k", "10meg", "1.5p").
/// Exposed for tests.  Throws std::invalid_argument on garbage.
double parse_spice_number(const std::string& token);

}  // namespace rlc::spice
