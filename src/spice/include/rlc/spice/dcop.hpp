#pragma once

/// \file dcop.hpp
/// DC operating point: Newton-Raphson on the static circuit equations with
/// gmin stepping and source stepping as convergence fallbacks (the standard
/// SPICE homotopy ladder).

#include <vector>

#include "rlc/spice/circuit.hpp"

namespace rlc::spice {

struct DcOptions {
  int max_iterations = 200;
  double reltol = 1e-6;
  double abstol_v = 1e-9;
  double abstol_i = 1e-12;
  double max_voltage_step = 1.0;
  double gmin_final = 1e-12;  ///< residual gmin left in the final solve
};

struct DcResult {
  std::vector<double> x;  ///< unknown vector (node voltages, branch currents)
  bool converged = false;
  int iterations = 0;     ///< Newton iterations of the final (direct) solve
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;

  /// Voltage of node n.
  double voltage(NodeId n) const { return n == 0 ? 0.0 : x[n - 1]; }
};

/// Compute the DC operating point.  The circuit is finalized if needed.
DcResult dc_operating_point(Circuit& ckt, const DcOptions& opts = {});

}  // namespace rlc::spice
