#pragma once

/// \file waveform_io.hpp
/// CSV import/export for analysis results, so waveforms can be plotted or
/// diffed outside the library (gnuplot, python, golden-file regression).
/// Format: a header row "time,<label>,<label>,..." followed by one row per
/// sample, full double precision (%.17g) so a write/read round trip is
/// lossless.

#include <iosfwd>
#include <string>

#include "rlc/spice/ac.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::spice {

/// Write a transient result as CSV.
void write_csv(std::ostream& out, const TransientResult& r);
void write_csv_file(const std::string& path, const TransientResult& r);

/// Write an AC result as CSV with magnitude/phase column pairs:
/// "freq,|label|,arg(label),..." (phase in radians).
void write_csv(std::ostream& out, const AcResult& r);
void write_csv_file(const std::string& path, const AcResult& r);

/// Parsed CSV waveform table (first column is the axis: time or frequency).
struct CsvTable {
  std::vector<std::string> labels;             ///< excludes the axis column
  std::vector<double> axis;
  std::vector<std::vector<double>> columns;    ///< columns[i] matches labels[i]

  /// Column by label; throws std::out_of_range if absent.
  const std::vector<double>& column(const std::string& label) const;
};

/// Read a CSV written by write_csv (or any compatible numeric CSV).
/// Throws std::runtime_error on malformed input.
CsvTable read_csv(std::istream& in);
CsvTable read_csv_file(const std::string& path);

}  // namespace rlc::spice
