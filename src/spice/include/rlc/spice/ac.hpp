#pragma once

/// \file ac.hpp
/// Small-signal AC analysis: linearize every device at the DC operating
/// point and solve the complex MNA system at each requested frequency.
/// Sources contribute their `ac_magnitude`.  The dense complex LU is used —
/// AC sweeps here are validation-sized (ladder lines, small amplifiers),
/// where dense is both simple and fast.

#include <complex>
#include <string>
#include <vector>

#include "rlc/spice/circuit.hpp"
#include "rlc/spice/transient.hpp"

namespace rlc::spice {

struct AcOptions {
  std::vector<double> frequencies;  ///< [Hz], each > 0
  /// Compute the DC operating point first (needed whenever the circuit has
  /// nonlinear devices); false skips it for purely linear circuits.
  bool compute_dc_op = true;
  std::vector<Probe> probes;  ///< empty: every node voltage
};

struct AcResult {
  std::vector<double> freq;
  std::vector<std::string> labels;
  /// signals[probe][freq_index] — complex phasor response.
  std::vector<std::vector<std::complex<double>>> signals;
  bool completed = false;

  const std::vector<std::complex<double>>& signal(const std::string& label) const;
};

/// Helpers to build log-spaced frequency grids.
std::vector<double> log_frequencies(double f_start, double f_stop,
                                    int points_per_decade);

/// Run the AC sweep.  Throws std::invalid_argument on an empty/invalid
/// frequency list and std::runtime_error if the DC solve fails.
AcResult run_ac(Circuit& ckt, const AcOptions& opts);

}  // namespace rlc::spice
