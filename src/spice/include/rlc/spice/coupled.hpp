#pragma once

/// \file coupled.hpp
/// Coupled and controlled elements:
///   * MutualInductance — SPICE K element between two inductors, enabling
///     the inductively-coupled bus experiments the paper's Section 1.1/3
///     discussion motivates (return-path and neighbour-switching effects);
///   * Vcvs / Vccs — linear controlled sources (E / G elements).

#include "rlc/spice/devices.hpp"

namespace rlc::spice {

/// Mutual inductance M = k sqrt(L1 L2) between two existing inductors
/// (|k| < 1; negative k flips the coupling polarity).  Adds the M di/dt
/// cross terms to both inductors' branch equations:
///   v1 = L1 di1/dt + M di2/dt,   v2 = M di1/dt + L2 di2/dt.
class MutualInductance : public Device {
 public:
  MutualInductance(std::string name, Inductor& l1, Inductor& l2,
                   double coupling);
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;
  void commit_step(const StampContext& ctx) override;
  void init_history(const StampContext& ctx) override;
  double mutual() const { return m_; }

 private:
  const Inductor* l1_;
  const Inductor* l2_;
  double m_;  ///< mutual inductance [H]
  double i1_prev_ = 0.0;
  double i2_prev_ = 0.0;
};

/// Voltage-controlled voltage source: v(p) - v(n) = gain * (v(cp) - v(cn)).
class Vcvs : public Device {
 public:
  Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn,
       double gain);
  int branch_count() const override { return 1; }
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;

 private:
  NodeId p_, n_, cp_, cn_;
  double gain_;
};

/// Voltage-controlled current source: i(p -> n) = gm * (v(cp) - v(cn)).
class Vccs : public Device {
 public:
  Vccs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gm);
  void stamp(const StampContext& ctx, Stamper& st) const override;
  void stamp_ac(const AcContext& ctx, AcStamper& st) const override;

 private:
  NodeId p_, n_, cp_, cn_;
  double gm_;
};

}  // namespace rlc::spice
