#pragma once

/// \file transient.hpp
/// Transient analysis: trapezoidal (default) or backward-Euler integration
/// with per-step Newton iteration, automatic step halving on Newton failure,
/// and backward-Euler startup steps to damp the trapezoidal rule's response
/// to inconsistent initial conditions.

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rlc/spice/circuit.hpp"

namespace rlc::spice {

/// What to record during the run.  Recording everything is fine for small
/// circuits; ladder-line circuits with 10^5 steps should probe selectively.
struct Probe {
  enum class Kind { kNodeVoltage, kBranchCurrent, kResistorCurrent };
  Kind kind = Kind::kNodeVoltage;
  NodeId node = 0;
  const Device* device = nullptr;
  std::string label;

  static Probe node_voltage(NodeId n, std::string label) {
    return {Kind::kNodeVoltage, n, nullptr, std::move(label)};
  }
  /// Current through a device that owns a branch unknown (VSource/Inductor).
  static Probe branch_current(const Device& d, std::string label) {
    return {Kind::kBranchCurrent, 0, &d, std::move(label)};
  }
  static Probe resistor_current(const Resistor& r, std::string label) {
    return {Kind::kResistorCurrent, 0, &r, std::move(label)};
  }
};

struct TransientOptions {
  double tstop = 0.0;
  double dt = 0.0;              ///< base (maximum) step
  double record_start = 0.0;    ///< discard samples before this time
  Integrator method = Integrator::kTrapezoidal;
  int be_startup_steps = 2;     ///< backward-Euler steps at t = 0

  bool start_from_dc = false;   ///< false: UIC start from initial_voltages
  std::vector<std::pair<NodeId, double>> initial_voltages;

  int max_newton = 60;
  double reltol = 1e-4;
  double abstol_v = 1e-6;
  double abstol_i = 1e-9;
  double max_voltage_step = 1.0;
  int max_step_halvings = 12;

  /// Local-truncation-error step control (opt-in).  Uses the Milne device:
  /// the difference between the trapezoidal corrector and a polynomial
  /// predictor estimates the O(dt^3) LTE; steps with a normalized error
  /// above 1 are rejected and the step size follows err^(-1/3), bounded by
  /// [dt / 2^max_step_halvings, dt] (opts.dt acts as the maximum step).
  bool adaptive_lte = false;
  double lte_reltol = 1e-3;
  double lte_abstol_v = 1e-5;

  std::vector<Probe> probes;    ///< empty: record every node voltage
};

struct TransientResult {
  std::vector<double> time;
  std::vector<std::string> labels;
  std::vector<std::vector<double>> signals;  ///< signals[probe][sample]
  bool completed = false;
  long steps_accepted = 0;
  long steps_rejected = 0;
  long newton_iterations = 0;

  /// Signal by label; throws std::out_of_range if unknown.
  const std::vector<double>& signal(const std::string& label) const;
};

/// Run a transient analysis.  Throws std::invalid_argument on bad options
/// and std::runtime_error if the initial DC solve (when requested) fails.
TransientResult run_transient(Circuit& ckt, const TransientOptions& opts);

}  // namespace rlc::spice
