#pragma once

/// \file circuit.hpp
/// Netlist container: named nodes, device factory methods, and unknown
/// layout (node voltages followed by branch currents).

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rlc/spice/coupled.hpp"
#include "rlc/spice/devices.hpp"
#include "rlc/spice/mosfet.hpp"

namespace rlc::spice {

class Circuit {
 public:
  Circuit();

  /// Get-or-create a named node ("0", "gnd" and "GND" are ground).
  NodeId node(const std::string& name);
  /// Ground node id (0).
  NodeId ground() const { return 0; }
  /// Name of a node id.
  const std::string& node_name(NodeId n) const;
  /// Number of nodes including ground.
  int node_count() const { return static_cast<int>(node_names_.size()); }

  Resistor& add_resistor(const std::string& name, NodeId a, NodeId b,
                         double ohms);
  Capacitor& add_capacitor(const std::string& name, NodeId a, NodeId b,
                           double farads,
                           std::optional<double> ic = std::nullopt);
  Inductor& add_inductor(const std::string& name, NodeId a, NodeId b,
                         double henries,
                         std::optional<double> ic = std::nullopt);
  VSource& add_vsource(const std::string& name, NodeId p, NodeId n,
                       Waveform w, double ac_magnitude = 0.0);
  ISource& add_isource(const std::string& name, NodeId p, NodeId n,
                       Waveform w, double ac_magnitude = 0.0);
  Mosfet& add_mosfet(const std::string& name, NodeId d, NodeId g, NodeId s,
                     const MosParams& params, double size = 1.0);
  /// Mutual coupling between two inductors already in this circuit.
  MutualInductance& add_mutual(const std::string& name, Inductor& l1,
                               Inductor& l2, double coupling);
  Vcvs& add_vcvs(const std::string& name, NodeId p, NodeId n, NodeId cp,
                 NodeId cn, double gain);
  Vccs& add_vccs(const std::string& name, NodeId p, NodeId n, NodeId cp,
                 NodeId cn, double gm);

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }
  /// Find a device by name (nullptr if absent).
  Device* find(const std::string& name);
  const Device* find(const std::string& name) const;

  /// Assign branch unknown indices; must be called (or is called lazily by
  /// the analyses) after the netlist is complete.  Idempotent until the
  /// netlist changes.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Total unknowns: (node_count - 1) node voltages + branch currents.
  int unknown_count() const;
  /// True if any device requires Newton iteration.
  bool has_nonlinear() const;

 private:
  template <typename T, typename... Args>
  T& emplace(Args&&... args);

  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  bool finalized_ = false;
  int branch_total_ = 0;
};

}  // namespace rlc::spice
