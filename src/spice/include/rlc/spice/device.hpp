#pragma once

/// \file device.hpp
/// The device abstraction of the MNA circuit engine.  Unknown ordering:
/// node voltages first (node n > 0 maps to unknown n - 1; node 0 is ground),
/// then one current unknown per device "branch" (voltage sources and
/// inductors).  Devices contribute to the system via stamps; dynamic devices
/// keep companion-model history that is advanced by commit_step().

#include <complex>
#include <string>
#include <vector>

#include "rlc/linalg/matrix.hpp"
#include "rlc/linalg/sparse.hpp"

namespace rlc::spice {

using NodeId = int;  ///< 0 is ground

enum class Analysis { kDc, kTransient };
enum class Integrator { kTrapezoidal, kBackwardEuler };

/// Everything a device needs to know to stamp itself.
struct StampContext {
  Analysis analysis = Analysis::kDc;
  Integrator method = Integrator::kTrapezoidal;
  double time = 0.0;  ///< time being solved for (end of the step)
  double dt = 0.0;    ///< step size (transient only)
  const std::vector<double>* x = nullptr;  ///< current Newton iterate
  double gmin = 0.0;          ///< convergence-aid shunt (DC gmin stepping)
  double source_scale = 1.0;  ///< source stepping homotopy factor

  /// Voltage of node n in the current iterate (0 for ground).
  double v(NodeId n) const { return n == 0 ? 0.0 : (*x)[n - 1]; }
  /// Value of unknown `i` (nodes and branches alike).
  double unknown(int i) const { return (*x)[i]; }
};

/// Collects matrix triplets and the right-hand side.  Row/column index -1
/// denotes ground and is ignored, so device stamp code needs no special
/// cases for grounded terminals.
class Stamper {
 public:
  Stamper(std::vector<rlc::linalg::Triplet>& triplets, std::vector<double>& rhs)
      : triplets_(triplets), rhs_(rhs) {}

  /// Matrix entry A(row, col) += value.
  void add(int row, int col, double value) {
    if (row < 0 || col < 0) return;
    triplets_.push_back({row, col, value});
  }
  /// Right-hand side z(row) += value.
  void add_rhs(int row, double value) {
    if (row < 0) return;
    rhs_[row] += value;
  }

  /// Unknown index of node n (-1 for ground).
  static int unk(NodeId n) { return n - 1; }

 private:
  std::vector<rlc::linalg::Triplet>& triplets_;
  std::vector<double>& rhs_;
};

/// Context for small-signal AC stamping: angular frequency and the DC
/// operating point nonlinear devices linearize around.
struct AcContext {
  double omega = 0.0;
  const std::vector<double>* op = nullptr;  ///< DC operating point

  double v_op(NodeId n) const {
    return (n == 0 || op == nullptr) ? 0.0 : (*op)[n - 1];
  }
};

/// Complex-valued stamper for the AC (dense) MNA system.  Index -1 denotes
/// ground, as in Stamper.
class AcStamper {
 public:
  AcStamper(rlc::linalg::MatrixC& a, std::vector<std::complex<double>>& rhs)
      : a_(a), rhs_(rhs) {}
  void add(int row, int col, std::complex<double> value) {
    if (row < 0 || col < 0) return;
    a_(row, col) += value;
  }
  void add_rhs(int row, std::complex<double> value) {
    if (row < 0) return;
    rhs_[row] += value;
  }

 private:
  rlc::linalg::MatrixC& a_;
  std::vector<std::complex<double>>& rhs_;
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Number of extra current unknowns this device introduces.
  virtual int branch_count() const { return 0; }
  /// Index of the device's first branch unknown (set by Circuit::finalize).
  void set_branch_base(int base) { branch_base_ = base; }
  int branch_base() const { return branch_base_; }

  /// True if the stamp depends on the current iterate (requires Newton).
  virtual bool nonlinear() const { return false; }

  /// Contribute to the MNA system for the given context.
  virtual void stamp(const StampContext& ctx, Stamper& st) const = 0;

  /// Accept ctx.x as the solution at ctx.time; advance companion history.
  virtual void commit_step(const StampContext& ctx) { (void)ctx; }

  /// Initialize history from the t = 0 state in ctx.x (UIC start or DC op).
  virtual void init_history(const StampContext& ctx) { (void)ctx; }

  /// Contribute to the small-signal AC system at the given frequency,
  /// linearized around ctx.op.  Every built-in device implements this;
  /// the default rejects devices without an AC model so a missing override
  /// cannot silently produce wrong frequency responses.
  virtual void stamp_ac(const AcContext& ctx, AcStamper& st) const;

 private:
  std::string name_;
  int branch_base_ = -1;
};

}  // namespace rlc::spice
