#include "rlc/spice/devices.hpp"

#include <stdexcept>

namespace rlc::spice {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  if (!(ohms > 0.0)) throw std::domain_error("Resistor: resistance must be > 0");
}

void Resistor::stamp(const StampContext& ctx, Stamper& st) const {
  (void)ctx;
  const double g = 1.0 / ohms_;
  const int ia = Stamper::unk(a_), ib = Stamper::unk(b_);
  st.add(ia, ia, g);
  st.add(ib, ib, g);
  st.add(ia, ib, -g);
  st.add(ib, ia, -g);
}

void Resistor::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  (void)ctx;
  const double g = 1.0 / ohms_;
  const int ia = Stamper::unk(a_), ib = Stamper::unk(b_);
  st.add(ia, ia, g);
  st.add(ib, ib, g);
  st.add(ia, ib, -g);
  st.add(ib, ia, -g);
}

double Resistor::current(const std::vector<double>& x) const {
  const double va = a_ == 0 ? 0.0 : x[a_ - 1];
  const double vb = b_ == 0 ? 0.0 : x[b_ - 1];
  return (va - vb) / ohms_;
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads,
                     std::optional<double> ic)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads), ic_(ic) {
  if (!(farads > 0.0)) throw std::domain_error("Capacitor: capacitance must be > 0");
}

double Capacitor::geq(const StampContext& ctx) const {
  return (ctx.method == Integrator::kTrapezoidal ? 2.0 : 1.0) * farads_ / ctx.dt;
}

double Capacitor::ieq_hist(const StampContext& ctx) const {
  const double g = geq(ctx);
  if (ctx.method == Integrator::kTrapezoidal) return g * v_prev_ + i_prev_;
  return g * v_prev_;
}

void Capacitor::stamp(const StampContext& ctx, Stamper& st) const {
  if (ctx.analysis == Analysis::kDc) return;  // open at DC
  const double g = geq(ctx);
  const double ieq = ieq_hist(ctx);
  const int ia = Stamper::unk(a_), ib = Stamper::unk(b_);
  st.add(ia, ia, g);
  st.add(ib, ib, g);
  st.add(ia, ib, -g);
  st.add(ib, ia, -g);
  // Companion current source: i(a->b) = g*v - ieq, so +ieq injects into a.
  st.add_rhs(ia, ieq);
  st.add_rhs(ib, -ieq);
}

void Capacitor::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  const std::complex<double> y{0.0, ctx.omega * farads_};
  const int ia = Stamper::unk(a_), ib = Stamper::unk(b_);
  st.add(ia, ia, y);
  st.add(ib, ib, y);
  st.add(ia, ib, -y);
  st.add(ib, ia, -y);
}

void Capacitor::commit_step(const StampContext& ctx) {
  const double v_new = ctx.v(a_) - ctx.v(b_);
  i_prev_ = geq(ctx) * v_new - ieq_hist(ctx);
  v_prev_ = v_new;
}

void Capacitor::init_history(const StampContext& ctx) {
  v_prev_ = ic_ ? *ic_ : (ctx.v(a_) - ctx.v(b_));
  i_prev_ = 0.0;
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double henries,
                   std::optional<double> ic)
    : Device(std::move(name)), a_(a), b_(b), henries_(henries), ic_(ic) {
  if (!(henries > 0.0)) throw std::domain_error("Inductor: inductance must be > 0");
}

void Inductor::stamp(const StampContext& ctx, Stamper& st) const {
  const int ia = Stamper::unk(a_), ib = Stamper::unk(b_);
  const int br = branch_base();
  // Branch current enters the node equations.
  st.add(ia, br, 1.0);
  st.add(ib, br, -1.0);
  // Branch (voltage) equation row.
  st.add(br, ia, 1.0);
  st.add(br, ib, -1.0);
  if (ctx.analysis == Analysis::kDc) {
    // Short at DC: v(a) - v(b) = 0 (row complete as-is).
    return;
  }
  const bool trap = ctx.method == Integrator::kTrapezoidal;
  const double req = (trap ? 2.0 : 1.0) * henries_ / ctx.dt;
  st.add(br, br, -req);
  const double rhs = trap ? -(v_prev_ + req * i_prev_) : -req * i_prev_;
  st.add_rhs(br, rhs);
}

void Inductor::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  const int ia = Stamper::unk(a_), ib = Stamper::unk(b_);
  const int br = branch_base();
  st.add(ia, br, 1.0);
  st.add(ib, br, -1.0);
  st.add(br, ia, 1.0);
  st.add(br, ib, -1.0);
  st.add(br, br, std::complex<double>{0.0, -ctx.omega * henries_});
}

void Inductor::commit_step(const StampContext& ctx) {
  v_prev_ = ctx.v(a_) - ctx.v(b_);
  i_prev_ = ctx.unknown(branch_base());
}

void Inductor::init_history(const StampContext& ctx) {
  v_prev_ = ctx.v(a_) - ctx.v(b_);
  i_prev_ = ic_ ? *ic_ : ctx.unknown(branch_base());
}

// ----------------------------------------------------------------- VSource

VSource::VSource(std::string name, NodeId p, NodeId n, Waveform w,
                 double ac_magnitude)
    : Device(std::move(name)), p_(p), n_(n), waveform_(std::move(w)),
      ac_magnitude_(ac_magnitude) {}

void VSource::stamp(const StampContext& ctx, Stamper& st) const {
  const int ip = Stamper::unk(p_), in = Stamper::unk(n_);
  const int br = branch_base();
  st.add(ip, br, 1.0);
  st.add(in, br, -1.0);
  st.add(br, ip, 1.0);
  st.add(br, in, -1.0);
  const double v = (ctx.analysis == Analysis::kDc)
                       ? waveform_dc_value(waveform_)
                       : waveform_value(waveform_, ctx.time);
  st.add_rhs(br, v * ctx.source_scale);
}

void VSource::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  (void)ctx;
  const int ip = Stamper::unk(p_), in = Stamper::unk(n_);
  const int br = branch_base();
  st.add(ip, br, 1.0);
  st.add(in, br, -1.0);
  st.add(br, ip, 1.0);
  st.add(br, in, -1.0);
  st.add_rhs(br, ac_magnitude_);
}

// ----------------------------------------------------------------- ISource

ISource::ISource(std::string name, NodeId p, NodeId n, Waveform w,
                 double ac_magnitude)
    : Device(std::move(name)), p_(p), n_(n), waveform_(std::move(w)),
      ac_magnitude_(ac_magnitude) {}

void ISource::stamp(const StampContext& ctx, Stamper& st) const {
  const double i = ((ctx.analysis == Analysis::kDc)
                        ? waveform_dc_value(waveform_)
                        : waveform_value(waveform_, ctx.time)) *
                   ctx.source_scale;
  // Current flows p -> n through the source: leaves p, enters n.
  st.add_rhs(Stamper::unk(p_), -i);
  st.add_rhs(Stamper::unk(n_), i);
}

void ISource::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  (void)ctx;
  st.add_rhs(Stamper::unk(p_), -ac_magnitude_);
  st.add_rhs(Stamper::unk(n_), ac_magnitude_);
}

}  // namespace rlc::spice
