#include "rlc/spice/device.hpp"

#include <stdexcept>

namespace rlc::spice {

void Device::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  (void)ctx;
  (void)st;
  throw std::logic_error("device '" + name_ + "' has no AC (small-signal) model");
}

}  // namespace rlc::spice
