#include "rlc/spice/dcop.hpp"

#include "newton_detail.hpp"

namespace rlc::spice {

DcResult dc_operating_point(Circuit& ckt, const DcOptions& opts) {
  ckt.finalize();
  const int n = ckt.unknown_count();
  const int n_nodes = ckt.node_count() - 1;

  detail::NewtonSettings ns;
  ns.max_iterations = opts.max_iterations;
  ns.reltol = opts.reltol;
  ns.abstol_v = opts.abstol_v;
  ns.abstol_i = opts.abstol_i;
  ns.max_voltage_step = opts.max_voltage_step;

  StampContext ctx;
  ctx.analysis = Analysis::kDc;
  ctx.gmin = opts.gmin_final;
  ctx.source_scale = 1.0;

  detail::SolveWorkspace ws;

  DcResult res;
  res.x.assign(n, 0.0);

  // 1) Direct attempt.
  auto out = detail::newton_solve(ckt, ctx, ns, n_nodes, res.x, ws);
  if (out.converged) {
    res.converged = true;
    res.iterations = out.iterations;
    return res;
  }

  // 2) Gmin stepping: solve with a large gmin and relax it decade by decade,
  //    warm-starting each stage.
  res.x.assign(n, 0.0);
  bool ladder_ok = true;
  for (double gmin = 1e-2; gmin >= opts.gmin_final * 0.99; gmin *= 0.1) {
    ctx.gmin = gmin;
    out = detail::newton_solve(ckt, ctx, ns, n_nodes, res.x, ws);
    if (!out.converged) {
      ladder_ok = false;
      break;
    }
  }
  if (ladder_ok) {
    ctx.gmin = opts.gmin_final;
    out = detail::newton_solve(ckt, ctx, ns, n_nodes, res.x, ws);
    if (out.converged) {
      res.converged = true;
      res.iterations = out.iterations;
      res.used_gmin_stepping = true;
      return res;
    }
  }

  // 3) Source stepping: ramp all independent sources from 0 to full value.
  res.x.assign(n, 0.0);
  ctx.gmin = opts.gmin_final;
  bool ramp_ok = true;
  for (int step = 1; step <= 20; ++step) {
    ctx.source_scale = static_cast<double>(step) / 20.0;
    out = detail::newton_solve(ckt, ctx, ns, n_nodes, res.x, ws);
    if (!out.converged) {
      ramp_ok = false;
      break;
    }
  }
  if (ramp_ok) {
    res.converged = true;
    res.iterations = out.iterations;
    res.used_source_stepping = true;
    return res;
  }
  res.converged = false;
  return res;
}

}  // namespace rlc::spice
