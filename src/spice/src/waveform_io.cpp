#include "rlc/spice/waveform_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlc::spice {

namespace {

void write_value(std::ostream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  return f;
}

}  // namespace

void write_csv(std::ostream& out, const TransientResult& r) {
  out << "time";
  for (const auto& l : r.labels) out << "," << l;
  out << "\n";
  for (std::size_t i = 0; i < r.time.size(); ++i) {
    write_value(out, r.time[i]);
    for (const auto& s : r.signals) {
      out << ",";
      write_value(out, s[i]);
    }
    out << "\n";
  }
}

void write_csv_file(const std::string& path, const TransientResult& r) {
  auto f = open_or_throw(path);
  write_csv(f, r);
}

void write_csv(std::ostream& out, const AcResult& r) {
  out << "freq";
  for (const auto& l : r.labels) out << ",|" << l << "|,arg(" << l << ")";
  out << "\n";
  for (std::size_t i = 0; i < r.freq.size(); ++i) {
    write_value(out, r.freq[i]);
    for (const auto& s : r.signals) {
      out << ",";
      write_value(out, std::abs(s[i]));
      out << ",";
      write_value(out, std::arg(s[i]));
    }
    out << "\n";
  }
}

void write_csv_file(const std::string& path, const AcResult& r) {
  auto f = open_or_throw(path);
  write_csv(f, r);
}

const std::vector<double>& CsvTable::column(const std::string& label) const {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return columns[i];
  }
  throw std::out_of_range("CsvTable::column: no column '" + label + "'");
}

CsvTable read_csv(std::istream& in) {
  CsvTable t;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("read_csv: empty input");
  // Header.
  {
    std::istringstream hs(line);
    std::string cell;
    bool first = true;
    while (std::getline(hs, cell, ',')) {
      if (first) {
        first = false;  // axis column name ignored
      } else {
        t.labels.push_back(cell);
      }
    }
  }
  t.columns.assign(t.labels.size(), {});
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::size_t col = 0;
    while (std::getline(ls, cell, ',')) {
      double v;
      try {
        v = std::stod(cell);
      } catch (const std::exception&) {
        throw std::runtime_error("read_csv: bad number '" + cell + "' at line " +
                                 std::to_string(lineno));
      }
      if (col == 0) {
        t.axis.push_back(v);
      } else if (col - 1 < t.columns.size()) {
        t.columns[col - 1].push_back(v);
      } else {
        throw std::runtime_error("read_csv: extra column at line " +
                                 std::to_string(lineno));
      }
      ++col;
    }
    if (col != t.labels.size() + 1) {
      throw std::runtime_error("read_csv: wrong column count at line " +
                               std::to_string(lineno));
    }
  }
  return t;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  return read_csv(f);
}

}  // namespace rlc::spice
