#include "rlc/spice/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "rlc/math/constants.hpp"

namespace rlc::spice {

namespace {

double pulse_value(const PulseSpec& p, double t) {
  if (t < p.delay) return p.v1;
  double tau = t - p.delay;
  if (p.period > 0.0) tau = std::fmod(tau, p.period);
  if (tau < p.rise) {
    return p.v1 + (p.v2 - p.v1) * tau / p.rise;
  }
  tau -= p.rise;
  if (tau < p.width) return p.v2;
  tau -= p.width;
  if (tau < p.fall) {
    return p.v2 + (p.v1 - p.v2) * tau / p.fall;
  }
  return p.v1;
}

double pwl_value(const PwlSpec& p, double t) {
  if (p.points.empty()) return 0.0;
  if (t <= p.points.front().first) return p.points.front().second;
  if (t >= p.points.back().first) return p.points.back().second;
  const auto it = std::upper_bound(
      p.points.begin(), p.points.end(), t,
      [](double tt, const std::pair<double, double>& pt) { return tt < pt.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.first - lo.first;
  if (span <= 0.0) return hi.second;
  return lo.second + (hi.second - lo.second) * (t - lo.first) / span;
}

double sin_value(const SinSpec& s, double t) {
  if (t < s.delay) return s.offset;
  const double tau = t - s.delay;
  return s.offset + s.amplitude * std::exp(-s.damping * tau) *
                        std::sin(2.0 * rlc::math::kPi * s.freq * tau);
}

}  // namespace

double waveform_value(const Waveform& w, double t) {
  return std::visit(
      [t](const auto& spec) -> double {
        using T = std::decay_t<decltype(spec)>;
        if constexpr (std::is_same_v<T, DcSpec>) {
          return spec.value;
        } else if constexpr (std::is_same_v<T, PulseSpec>) {
          return pulse_value(spec, t);
        } else if constexpr (std::is_same_v<T, PwlSpec>) {
          return pwl_value(spec, t);
        } else {
          return sin_value(spec, t);
        }
      },
      w);
}

double waveform_dc_value(const Waveform& w) { return waveform_value(w, 0.0); }

}  // namespace rlc::spice
