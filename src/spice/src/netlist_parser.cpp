#include "rlc/spice/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

namespace rlc::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Logical line after comment stripping and continuation joining.
struct Card {
  std::string text;
  int line = 0;
};

std::vector<Card> split_cards(const std::string& text) {
  std::vector<Card> cards;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  bool first = true;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip trailing comments introduced by ';' or '$'.
    const auto cpos = raw.find_first_of(";$");
    if (cpos != std::string::npos) raw.erase(cpos);
    // Trim.
    const auto b = raw.find_first_not_of(" \t\r");
    if (first) {
      // Title line (may be empty).
      cards.push_back({"", 0});  // placeholder: slot 0 is the title
      cards[0].text = (b == std::string::npos) ? "" : raw.substr(b);
      cards[0].line = lineno;
      first = false;
      continue;
    }
    if (b == std::string::npos) continue;
    raw = raw.substr(b);
    if (raw[0] == '*') continue;
    if (raw[0] == '+') {
      if (cards.size() <= 1) {
        throw NetlistError(lineno, "continuation '+' with nothing to continue");
      }
      cards.back().text += " " + raw.substr(1);
      continue;
    }
    cards.push_back({raw, lineno});
  }
  if (cards.empty()) cards.push_back({"", 1});
  return cards;
}

/// Tokenize a card; '(' ')' ',' '=' are treated as separators, so
/// "pulse(0 1 0 1n 1n 5n 10n)" and "vt=0.5" split cleanly.
std::vector<std::string> tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == '(' || c == ')' || c == ',' || c == '=' || std::isspace(
            static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      if (c == '=') out.push_back("=");
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

double parse_spice_number(const std::string& token) {
  const std::string t = lower(token);
  std::size_t pos = 0;
  double v;
  try {
    v = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("not a number: '" + token + "'");
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return v;
  if (suffix.rfind("meg", 0) == 0) return v * 1e6;
  switch (suffix[0]) {
    case 'f': return v * 1e-15;
    case 'p': return v * 1e-12;
    case 'n': return v * 1e-9;
    case 'u': return v * 1e-6;
    case 'm': return v * 1e-3;
    case 'k': return v * 1e3;
    case 'g': return v * 1e9;
    case 't': return v * 1e12;
    default:
      throw std::invalid_argument("bad numeric suffix: '" + token + "'");
  }
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : cards_(split_cards(text)) {}

  ParsedDeck run() {
    deck_.title = cards_[0].text;
    for (std::size_t i = 1; i < cards_.size(); ++i) {
      const Card& c = cards_[i];
      line_ = c.line;
      toks_ = tokenize(c.text);
      if (toks_.empty()) continue;
      const std::string head = lower(toks_[0]);
      if (head == ".end") break;
      if (head == ".subckt") {
        i = collect_subckt(i);
        continue;
      }
      if (head[0] == '.') {
        card(head);
      } else {
        device(head);
      }
    }
    // Attach collected initial conditions to the transient options.
    if (deck_.tran) deck_.tran->initial_voltages = ics_;
    deck_.circuit.finalize();
    return std::move(deck_);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw NetlistError(line_, msg);
  }

  double num(std::size_t i, const char* what) const {
    if (i >= toks_.size()) fail(std::string("missing ") + what);
    try {
      return parse_spice_number(toks_[i]);
    } catch (const std::exception& e) {
      fail(std::string(what) + ": " + e.what());
    }
  }

  NodeId node(std::size_t i) {
    if (i >= toks_.size()) fail("missing node");
    return deck_.circuit.node(map_node(toks_[i]));
  }

  /// Map a node name through the active subcircuit instantiation: ports map
  /// to the instance's connections, ground stays global, anything else gets
  /// the instance prefix.
  std::string map_node(const std::string& raw) const {
    if (node_map_ == nullptr) return raw;
    const auto it = node_map_->find(lower(raw));
    if (it != node_map_->end()) return it->second;
    if (raw == "0" || lower(raw) == "gnd") return raw;
    return name_prefix_ + raw;
  }

  /// Prefix a device name with the active instance path.
  std::string map_name(const std::string& raw) const {
    return name_prefix_.empty() ? raw : name_prefix_ + raw;
  }

  /// Value of "key=value" anywhere after position `from`; nullopt if absent.
  std::optional<double> keyval(std::size_t from, const std::string& key) const {
    for (std::size_t i = from; i + 1 < toks_.size(); ++i) {
      if (lower(toks_[i]) == key && toks_[i + 1] == "=") {
        if (i + 2 >= toks_.size()) fail("missing value after '" + key + "='");
        return parse_spice_number(toks_[i + 2]);
      }
    }
    return std::nullopt;
  }

  /// Parse a source specification starting at token `i`:
  /// [dc] v | pulse(...) | pwl(...) | sin(...), then optional "ac mag".
  std::pair<Waveform, double> source_spec(std::size_t i) {
    Waveform w = DcSpec{0.0};
    double ac_mag = 0.0;
    bool have_main = false;
    while (i < toks_.size()) {
      const std::string kw = lower(toks_[i]);
      if (kw == "dc") {
        w = DcSpec{num(i + 1, "dc value")};
        i += 2;
        have_main = true;
      } else if (kw == "ac") {
        ac_mag = num(i + 1, "ac magnitude");
        i += 2;
      } else if (kw == "pulse") {
        PulseSpec p;
        p.v1 = num(i + 1, "pulse v1");
        p.v2 = num(i + 2, "pulse v2");
        p.delay = num(i + 3, "pulse delay");
        p.rise = num(i + 4, "pulse rise");
        p.fall = num(i + 5, "pulse fall");
        p.width = num(i + 6, "pulse width");
        const bool has_period =
            i + 7 < toks_.size() && lower(toks_[i + 7]) != "ac";
        p.period = has_period ? num(i + 7, "pulse period") : 0.0;
        i += has_period ? 8 : 7;
        w = p;
        have_main = true;
      } else if (kw == "pwl") {
        PwlSpec p;
        std::size_t j = i + 1;
        while (j + 1 < toks_.size() && lower(toks_[j]) != "ac") {
          p.points.emplace_back(num(j, "pwl time"), num(j + 1, "pwl value"));
          j += 2;
        }
        if (p.points.empty()) fail("pwl needs at least one (t, v) pair");
        i = j;
        w = p;
        have_main = true;
      } else if (kw == "sin") {
        SinSpec sp;
        sp.offset = num(i + 1, "sin offset");
        sp.amplitude = num(i + 2, "sin amplitude");
        sp.freq = num(i + 3, "sin frequency");
        std::size_t j = i + 4;
        if (j < toks_.size() && lower(toks_[j]) != "ac") {
          sp.delay = num(j, "sin delay");
          ++j;
          if (j < toks_.size() && lower(toks_[j]) != "ac") {
            sp.damping = num(j, "sin damping");
            ++j;
          }
        }
        i = j;
        w = sp;
        have_main = true;
      } else if (!have_main) {
        // Bare number = DC value.
        w = DcSpec{num(i, "source value")};
        ++i;
        have_main = true;
      } else {
        fail("unexpected token '" + toks_[i] + "' in source spec");
      }
    }
    return {w, ac_mag};
  }

  void device(const std::string& head) {
    if (head[0] == 'x') {
      expand_instance();
      return;
    }
    auto& ckt = deck_.circuit;
    const std::string name = map_name(toks_[0]);
    switch (head[0]) {
      case 'r':
        ckt.add_resistor(name, node(1), node(2), num(3, "resistance"));
        break;
      case 'c': {
        const auto ic = keyval(4, "ic");
        ckt.add_capacitor(name, node(1), node(2), num(3, "capacitance"), ic);
        break;
      }
      case 'l': {
        const auto ic = keyval(4, "ic");
        ckt.add_inductor(name, node(1), node(2), num(3, "inductance"), ic);
        break;
      }
      case 'v': {
        const auto p = node(1);
        const auto n = node(2);
        const auto [w, ac] = source_spec(3);
        ckt.add_vsource(name, p, n, w, ac);
        break;
      }
      case 'i': {
        const auto p = node(1);
        const auto n = node(2);
        const auto [w, ac] = source_spec(3);
        ckt.add_isource(name, p, n, w, ac);
        break;
      }
      case 'e':
        ckt.add_vcvs(name, node(1), node(2), node(3), node(4), num(5, "gain"));
        break;
      case 'g':
        ckt.add_vccs(name, node(1), node(2), node(3), node(4), num(5, "gm"));
        break;
      case 'k': {
        if (toks_.size() < 4) fail("K card: Kxxx L1 L2 k");
        auto* l1 = dynamic_cast<Inductor*>(ckt.find(map_name(toks_[1])));
        auto* l2 = dynamic_cast<Inductor*>(ckt.find(map_name(toks_[2])));
        if (l1 == nullptr || l2 == nullptr) {
          fail("K card references unknown inductor '" + toks_[1] + "'/'" +
               toks_[2] + "' (declare inductors first)");
        }
        ckt.add_mutual(name, *l1, *l2, num(3, "coupling"));
        break;
      }
      case 'm': {
        if (toks_.size() < 5) fail("M card: Mxxx d g s model [m=size]");
        const auto it = models_.find(lower(toks_[4]));
        if (it == models_.end()) fail("unknown .model '" + toks_[4] + "'");
        const double size = keyval(5, "m").value_or(1.0);
        ckt.add_mosfet(name, node(1), node(2), node(3), it->second, size);
        break;
      }
      default:
        fail("unsupported device type '" + std::string(1, head[0]) + "'");
    }
  }

  void card(const std::string& head) {
    if (head == ".model") {
      if (toks_.size() < 3) fail(".model name nmos|pmos vt=.. beta=..");
      MosParams mp;
      const std::string kind = lower(toks_[2]);
      if (kind == "nmos") {
        mp.type = MosType::kNmos;
      } else if (kind == "pmos") {
        mp.type = MosType::kPmos;
      } else {
        fail(".model type must be nmos or pmos");
      }
      const auto vt = keyval(3, "vt");
      const auto beta = keyval(3, "beta");
      if (!vt || !beta) fail(".model requires vt= and beta=");
      mp.vt = *vt;
      mp.beta = *beta;
      mp.lambda = keyval(3, "lambda").value_or(0.0);
      models_[lower(toks_[1])] = mp;
    } else if (head == ".tran") {
      TransientOptions t;
      t.dt = num(1, ".tran tstep");
      t.tstop = num(2, ".tran tstop");
      if (toks_.size() > 3) t.record_start = num(3, ".tran tstart");
      deck_.tran = t;
    } else if (head == ".ac") {
      if (toks_.size() < 5 || lower(toks_[1]) != "dec") {
        fail(".ac dec points fstart fstop");
      }
      AcOptions a;
      a.frequencies = log_frequencies(num(3, "fstart"), num(4, "fstop"),
                                      static_cast<int>(num(2, "points")));
      deck_.ac = a;
    } else if (head == ".ic") {
      // tokens: .ic v ( node ) = value ... -> after tokenize: ".ic" "v" node "=" value
      std::size_t i = 1;
      while (i < toks_.size()) {
        if (lower(toks_[i]) != "v" || i + 3 >= toks_.size() ||
            toks_[i + 2] != "=") {
          fail(".ic expects v(node)=value pairs");
        }
        ics_.emplace_back(deck_.circuit.node(toks_[i + 1]),
                          parse_spice_number(toks_[i + 3]));
        i += 4;
      }
    } else if (head == ".options" || head == ".option") {
      // Accepted and ignored (documented no-op).
    } else {
      fail("unsupported card '" + head + "'");
    }
  }

  /// Record a .subckt ... .ends block starting at card index i; returns the
  /// index of the .ends card (the caller's loop continues after it).
  std::size_t collect_subckt(std::size_t i) {
    if (toks_.size() < 2) fail(".subckt needs a name and ports");
    Subckt sub;
    const std::string name = lower(toks_[1]);
    for (std::size_t p = 2; p < toks_.size(); ++p) sub.ports.push_back(toks_[p]);
    std::size_t j = i + 1;
    for (; j < cards_.size(); ++j) {
      const auto t = tokenize(cards_[j].text);
      if (!t.empty() && lower(t[0]) == ".ends") break;
      if (!t.empty() && lower(t[0]) == ".subckt") {
        fail("nested .subckt definitions are not supported (nest via X instances)");
      }
      sub.body.push_back(cards_[j]);
    }
    if (j >= cards_.size()) fail(".subckt '" + name + "' missing .ends");
    subckts_[name] = std::move(sub);
    return j;
  }

  /// Expand an X card by replaying the subcircuit body through the regular
  /// device path with node/name mapping active.  Supports nesting.
  void expand_instance() {
    if (toks_.size() < 2) fail("X card: Xname nodes... subcktname");
    const std::string inst = map_name(toks_[0]);
    const std::string sub_name = lower(toks_.back());
    const auto it = subckts_.find(sub_name);
    if (it == subckts_.end()) fail("unknown .subckt '" + toks_.back() + "'");
    const Subckt& sub = it->second;
    if (toks_.size() - 2 != sub.ports.size()) {
      fail("subckt '" + sub_name + "' expects " +
           std::to_string(sub.ports.size()) + " nodes, got " +
           std::to_string(toks_.size() - 2));
    }
    if (++expansion_depth_ > 20) fail("subcircuit nesting too deep (cycle?)");
    // Build the port map in the CALLER's namespace first.
    auto local_map = std::make_unique<std::map<std::string, std::string>>();
    for (std::size_t p = 0; p < sub.ports.size(); ++p) {
      (*local_map)[lower(sub.ports[p])] = map_node(toks_[1 + p]);
    }
    // Swap in the instance context and replay the body.
    auto* saved_map = node_map_;
    const std::string saved_prefix = name_prefix_;
    const auto saved_toks = toks_;
    const int saved_line = line_;
    node_map_ = local_map.get();
    name_prefix_ = inst + ".";
    for (const Card& c : sub.body) {
      line_ = c.line;
      toks_ = tokenize(c.text);
      if (toks_.empty()) continue;
      const std::string head = lower(toks_[0]);
      if (head[0] == '.') {
        if (head == ".model") {
          card(head);  // models are global
        } else {
          fail("card '" + head + "' not allowed inside .subckt");
        }
      } else {
        device(head);
      }
    }
    node_map_ = saved_map;
    name_prefix_ = saved_prefix;
    toks_ = saved_toks;
    line_ = saved_line;
    --expansion_depth_;
  }

  struct Subckt {
    std::vector<std::string> ports;
    std::vector<Card> body;
  };

  std::vector<Card> cards_;
  std::vector<std::string> toks_;
  int line_ = 0;
  ParsedDeck deck_;
  std::map<std::string, MosParams> models_;
  std::vector<std::pair<NodeId, double>> ics_;
  std::map<std::string, Subckt> subckts_;
  const std::map<std::string, std::string>* node_map_ = nullptr;
  std::string name_prefix_;
  int expansion_depth_ = 0;
};

}  // namespace

ParsedDeck parse_netlist(const std::string& text) { return Parser(text).run(); }

ParsedDeck parse_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open netlist file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_netlist(ss.str());
}

}  // namespace rlc::spice
