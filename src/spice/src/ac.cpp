#include "rlc/spice/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "rlc/linalg/lu.hpp"
#include "rlc/math/constants.hpp"
#include "rlc/spice/dcop.hpp"

namespace rlc::spice {

const std::vector<std::complex<double>>& AcResult::signal(
    const std::string& label) const {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return signals[i];
  }
  throw std::out_of_range("AcResult::signal: no probe labelled '" + label + "'");
}

std::vector<double> log_frequencies(double f_start, double f_stop,
                                    int points_per_decade) {
  if (!(f_start > 0.0) || !(f_stop > f_start) || points_per_decade < 1) {
    throw std::invalid_argument("log_frequencies: invalid sweep spec");
  }
  std::vector<double> out;
  const double decades = std::log10(f_stop / f_start);
  const int n = static_cast<int>(std::ceil(decades * points_per_decade));
  for (int i = 0; i <= n; ++i) {
    out.push_back(f_start * std::pow(10.0, decades * i / n));
  }
  return out;
}

namespace {

std::complex<double> eval_probe(const Probe& p,
                                const std::vector<std::complex<double>>& x) {
  switch (p.kind) {
    case Probe::Kind::kNodeVoltage:
      return p.node == 0 ? 0.0 : x[p.node - 1];
    case Probe::Kind::kBranchCurrent:
      return x[p.device->branch_base()];
    case Probe::Kind::kResistorCurrent: {
      const auto* r = static_cast<const Resistor*>(p.device);
      const auto v = [&x](NodeId n) {
        return n == 0 ? std::complex<double>{} : x[n - 1];
      };
      return (v(r->node_a()) - v(r->node_b())) / r->resistance();
    }
  }
  return {};
}

}  // namespace

AcResult run_ac(Circuit& ckt, const AcOptions& opts) {
  if (opts.frequencies.empty()) {
    throw std::invalid_argument("run_ac: no frequencies given");
  }
  for (double f : opts.frequencies) {
    if (!(f > 0.0)) throw std::invalid_argument("run_ac: frequencies must be > 0");
  }
  ckt.finalize();
  const int n = ckt.unknown_count();

  AcContext ctx;
  std::vector<double> op;
  if (opts.compute_dc_op) {
    const DcResult dc = dc_operating_point(ckt);
    if (!dc.converged) throw std::runtime_error("run_ac: DC operating point failed");
    op = dc.x;
    ctx.op = &op;
  }

  std::vector<Probe> probes = opts.probes;
  if (probes.empty()) {
    for (NodeId nd = 1; nd < ckt.node_count(); ++nd) {
      probes.push_back(Probe::node_voltage(nd, "v(" + ckt.node_name(nd) + ")"));
    }
  }

  AcResult res;
  res.freq = opts.frequencies;
  for (const auto& p : probes) res.labels.push_back(p.label);
  res.signals.assign(probes.size(), {});

  rlc::linalg::MatrixC A(n, n);
  std::vector<std::complex<double>> rhs(n);
  for (double f : opts.frequencies) {
    ctx.omega = 2.0 * rlc::math::kPi * f;
    A.set_zero();
    std::fill(rhs.begin(), rhs.end(), std::complex<double>{});
    AcStamper st(A, rhs);
    for (const auto& dev : ckt.devices()) dev->stamp_ac(ctx, st);
    // Tiny shunt for floating-node robustness, mirroring the transient path.
    for (int i = 0; i < ckt.node_count() - 1; ++i) A(i, i) += 1e-12;
    const rlc::linalg::LUC lu(A);
    const auto x = lu.solve(rhs);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      res.signals[i].push_back(eval_probe(probes[i], x));
    }
  }
  res.completed = true;
  return res;
}

}  // namespace rlc::spice
