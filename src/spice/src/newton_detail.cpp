#include "newton_detail.hpp"

#include <algorithm>
#include <cmath>

namespace rlc::spice::detail {

std::vector<double> assemble_and_solve(const Circuit& ckt,
                                       const StampContext& ctx, double gshunt,
                                       SolveWorkspace& ws) {
  const int n = const_cast<Circuit&>(ckt).unknown_count();
  ws.triplets.clear();
  ws.rhs.assign(n, 0.0);
  Stamper st(ws.triplets, ws.rhs);
  for (const auto& dev : ckt.devices()) dev->stamp(ctx, st);
  // Robustness shunt on every node voltage unknown (not branch rows), plus
  // the DC gmin convergence aid.
  const double gdiag = gshunt + ctx.gmin;
  if (gdiag > 0.0) {
    const int n_nodes = ckt.node_count() - 1;
    for (int i = 0; i < n_nodes; ++i) ws.triplets.push_back({i, i, gdiag});
  }
  const auto& A = ws.compressor.compress(n, n, ws.triplets);
  // Numeric-only refactorization while the pattern holds and the cached
  // pivot order stays stable; fall back to a fresh factorization (with
  // fresh pivoting) otherwise.
  if (ws.lu != nullptr && ws.compressor.reused() && ws.lu->size() == n &&
      ws.lu->refactor(A)) {
    ++ws.refactorizations;
  } else {
    ws.lu = std::make_unique<rlc::linalg::SparseLU>(A);
    ++ws.full_factorizations;
  }
  return ws.lu->solve(ws.rhs);
}

NewtonOutcome newton_solve(const Circuit& ckt, StampContext ctx,
                           const NewtonSettings& st, int n_node_unknowns,
                           std::vector<double>& x, SolveWorkspace& ws) {
  NewtonOutcome out;
  const bool nonlinear = ckt.has_nonlinear();
  std::vector<double> x_new;
  for (int it = 0; it < st.max_iterations; ++it) {
    out.iterations = it + 1;
    ctx.x = &x;
    x_new = assemble_and_solve(ckt, ctx, st.gshunt, ws);
    bool finite = true;
    for (double v : x_new) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
    }
    if (!finite) return out;  // diverged
    if (!nonlinear) {
      // Linear system: one solve is exact.
      x = std::move(x_new);
      out.converged = true;
      return out;
    }
    // Convergence test on the update, then damp (clamp) node voltages.
    bool converged = true;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = x_new[i] - x[i];
      const bool is_node = static_cast<int>(i) < n_node_unknowns;
      const double abstol = is_node ? st.abstol_v : st.abstol_i;
      if (std::abs(delta) > abstol + st.reltol * std::abs(x_new[i])) {
        converged = false;
      }
    }
    if (converged) {
      x = std::move(x_new);
      out.converged = true;
      return out;
    }
    for (std::size_t i = 0; i < n; ++i) {
      double delta = x_new[i] - x[i];
      if (static_cast<int>(i) < n_node_unknowns) {
        delta = std::clamp(delta, -st.max_voltage_step, st.max_voltage_step);
      }
      x[i] += delta;
    }
  }
  return out;
}

}  // namespace rlc::spice::detail
