#include "rlc/spice/circuit.hpp"

#include <stdexcept>

namespace rlc::spice {

Circuit::Circuit() {
  node_names_.push_back("0");
  node_ids_["0"] = 0;
  node_ids_["gnd"] = 0;
  node_ids_["GND"] = 0;
}

NodeId Circuit::node(const std::string& name) {
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_ids_[name] = id;
  return id;
}

const std::string& Circuit::node_name(NodeId n) const {
  if (n < 0 || n >= node_count()) {
    throw std::out_of_range("Circuit::node_name: bad node id");
  }
  return node_names_[n];
}

template <typename T, typename... Args>
T& Circuit::emplace(Args&&... args) {
  auto dev = std::make_unique<T>(std::forward<Args>(args)...);
  T& ref = *dev;
  devices_.push_back(std::move(dev));
  finalized_ = false;
  return ref;
}

Resistor& Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                                double ohms) {
  return emplace<Resistor>(name, a, b, ohms);
}

Capacitor& Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                  double farads, std::optional<double> ic) {
  return emplace<Capacitor>(name, a, b, farads, ic);
}

Inductor& Circuit::add_inductor(const std::string& name, NodeId a, NodeId b,
                                double henries, std::optional<double> ic) {
  return emplace<Inductor>(name, a, b, henries, ic);
}

VSource& Circuit::add_vsource(const std::string& name, NodeId p, NodeId n,
                              Waveform w, double ac_magnitude) {
  return emplace<VSource>(name, p, n, std::move(w), ac_magnitude);
}

ISource& Circuit::add_isource(const std::string& name, NodeId p, NodeId n,
                              Waveform w, double ac_magnitude) {
  return emplace<ISource>(name, p, n, std::move(w), ac_magnitude);
}

Mosfet& Circuit::add_mosfet(const std::string& name, NodeId d, NodeId g,
                            NodeId s, const MosParams& params, double size) {
  return emplace<Mosfet>(name, d, g, s, params, size);
}

MutualInductance& Circuit::add_mutual(const std::string& name, Inductor& l1,
                                      Inductor& l2, double coupling) {
  return emplace<MutualInductance>(name, l1, l2, coupling);
}

Vcvs& Circuit::add_vcvs(const std::string& name, NodeId p, NodeId n, NodeId cp,
                        NodeId cn, double gain) {
  return emplace<Vcvs>(name, p, n, cp, cn, gain);
}

Vccs& Circuit::add_vccs(const std::string& name, NodeId p, NodeId n, NodeId cp,
                        NodeId cn, double gm) {
  return emplace<Vccs>(name, p, n, cp, cn, gm);
}

Device* Circuit::find(const std::string& name) {
  for (const auto& d : devices_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

const Device* Circuit::find(const std::string& name) const {
  return const_cast<Circuit*>(this)->find(name);
}

void Circuit::finalize() {
  if (finalized_) return;
  int base = node_count() - 1;
  branch_total_ = 0;
  for (const auto& d : devices_) {
    if (d->branch_count() > 0) {
      d->set_branch_base(base);
      base += d->branch_count();
      branch_total_ += d->branch_count();
    }
  }
  finalized_ = true;
}

int Circuit::unknown_count() const {
  if (!finalized_) {
    throw std::logic_error("Circuit::unknown_count: call finalize() first");
  }
  return node_count() - 1 + branch_total_;
}

bool Circuit::has_nonlinear() const {
  for (const auto& d : devices_) {
    if (d->nonlinear()) return true;
  }
  return false;
}

}  // namespace rlc::spice
