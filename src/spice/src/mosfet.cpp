#include "rlc/spice/mosfet.hpp"

#include <stdexcept>

namespace rlc::spice {

namespace {

/// Forward-region (vds >= 0) NMOS-type evaluation.
MosEval nmos_forward(double vt, double beta, double lambda, double vgs,
                     double vds) {
  MosEval e;
  const double vov = vgs - vt;
  if (vov <= 0.0) return e;  // cutoff
  const double clm = 1.0 + lambda * vds;
  if (vds < vov) {
    // Triode.
    const double q = vov * vds - 0.5 * vds * vds;
    e.ids = beta * q * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * (vov - vds) * clm + beta * q * lambda;
  } else {
    // Saturation.
    const double q = 0.5 * vov * vov;
    e.ids = beta * q * clm;
    e.gm = beta * vov * clm;
    e.gds = beta * q * lambda;
  }
  return e;
}

/// NMOS-type for any vds: vds < 0 handled by swapping source and drain.
/// With J(vgs, vds) = -I(vgd, -vds):
///   dJ/dvgs = -dI/dvgd,   dJ/dvds = dI/dvgd + dI/dvsd.
MosEval nmos_eval(double vt, double beta, double lambda, double vgs,
                  double vds) {
  if (vds >= 0.0) return nmos_forward(vt, beta, lambda, vgs, vds);
  const MosEval m = nmos_forward(vt, beta, lambda, vgs - vds, -vds);
  MosEval e;
  e.ids = -m.ids;
  e.gm = -m.gm;
  e.gds = m.gm + m.gds;
  return e;
}

}  // namespace

MosEval mos_eval(const MosParams& p, double vgs, double vds) {
  if (p.type == MosType::kNmos) {
    return nmos_eval(p.vt, p.beta, p.lambda, vgs, vds);
  }
  // PMOS: I_p(vgs, vds) = -I_n(-vgs, -vds); both derivatives carry the
  // double sign flip, so gm and gds are returned unchanged.
  const MosEval m = nmos_eval(p.vt, p.beta, p.lambda, -vgs, -vds);
  MosEval e;
  e.ids = -m.ids;
  e.gm = m.gm;
  e.gds = m.gds;
  return e;
}

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s,
               MosParams params, double size)
    : Device(std::move(name)), d_(d), g_(g), s_(s), params_(params),
      size_(size) {
  if (!(params.vt > 0.0) || !(params.beta > 0.0) || !(params.lambda >= 0.0)) {
    throw std::domain_error("Mosfet: require vt > 0, beta > 0, lambda >= 0");
  }
  if (!(size > 0.0)) throw std::domain_error("Mosfet: size must be > 0");
}

void Mosfet::stamp(const StampContext& ctx, Stamper& st) const {
  const double vgs = ctx.v(g_) - ctx.v(s_);
  const double vds = ctx.v(d_) - ctx.v(s_);
  MosEval e = mos_eval(params_, vgs, vds);
  e.ids *= size_;
  e.gm *= size_;
  e.gds *= size_;
  // Linearized drain current (flows d -> s):
  //   i = ids0 + gm (vgs - vgs0) + gds (vds - vds0)
  //     = gm vgs + gds vds + ieq,   ieq = ids0 - gm vgs0 - gds vds0.
  const double ieq = e.ids - e.gm * vgs - e.gds * vds;
  const int id = Stamper::unk(d_), ig = Stamper::unk(g_), is = Stamper::unk(s_);
  // Row d (current leaves drain node into the channel):
  st.add(id, id, e.gds);
  st.add(id, ig, e.gm);
  st.add(id, is, -(e.gds + e.gm));
  st.add_rhs(id, -ieq);
  // Row s (current enters the source node):
  st.add(is, id, -e.gds);
  st.add(is, ig, -e.gm);
  st.add(is, is, e.gds + e.gm);
  st.add_rhs(is, ieq);
}

void Mosfet::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  const double vgs = ctx.v_op(g_) - ctx.v_op(s_);
  const double vds = ctx.v_op(d_) - ctx.v_op(s_);
  MosEval e = mos_eval(params_, vgs, vds);
  const double gm = e.gm * size_;
  const double gds = e.gds * size_;
  const int id = Stamper::unk(d_), ig = Stamper::unk(g_), is = Stamper::unk(s_);
  st.add(id, id, gds);
  st.add(id, ig, gm);
  st.add(id, is, -(gds + gm));
  st.add(is, id, -gds);
  st.add(is, ig, -gm);
  st.add(is, is, gds + gm);
}

double Mosfet::drain_current(const std::vector<double>& x) const {
  const auto v = [&x](NodeId n) { return n == 0 ? 0.0 : x[n - 1]; };
  MosEval e = mos_eval(params_, v(g_) - v(s_), v(d_) - v(s_));
  return e.ids * size_;
}

}  // namespace rlc::spice
