#include "rlc/spice/transient.hpp"

#include <algorithm>

#include <cmath>
#include <stdexcept>

#include "newton_detail.hpp"
#include "rlc/spice/dcop.hpp"

namespace rlc::spice {

const std::vector<double>& TransientResult::signal(
    const std::string& label) const {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return signals[i];
  }
  throw std::out_of_range("TransientResult::signal: no probe labelled '" +
                          label + "'");
}

namespace {

double eval_probe(const Probe& p, const std::vector<double>& x) {
  // Exhaustive over Probe::Kind: a probe the recorder does not understand
  // must fail loudly, not silently record zeros.
  switch (p.kind) {
    case Probe::Kind::kNodeVoltage:
      return p.node == 0 ? 0.0 : x[p.node - 1];
    case Probe::Kind::kBranchCurrent:
      return x[p.device->branch_base()];
    case Probe::Kind::kResistorCurrent:
      return static_cast<const Resistor*>(p.device)->current(x);
  }
  throw std::logic_error("eval_probe: unknown probe kind '" + p.label + "'");
}

}  // namespace

TransientResult run_transient(Circuit& ckt, const TransientOptions& opts) {
  if (!(opts.tstop > 0.0) || !(opts.dt > 0.0) || opts.dt > opts.tstop) {
    throw std::invalid_argument("run_transient: need 0 < dt <= tstop");
  }
  ckt.finalize();
  const int n = ckt.unknown_count();
  const int n_nodes = ckt.node_count() - 1;

  // ---- Initial state. ----
  std::vector<double> x(n, 0.0);
  if (opts.start_from_dc) {
    const DcResult dc = dc_operating_point(ckt);
    if (!dc.converged) {
      throw std::runtime_error("run_transient: initial DC solve failed");
    }
    x = dc.x;
  } else {
    for (const auto& [node, v] : opts.initial_voltages) {
      if (node > 0) x[node - 1] = v;
    }
    for (const auto& dev : ckt.devices()) {
      if (const auto* ind = dynamic_cast<const Inductor*>(dev.get())) {
        x[ind->branch_base()] = ind->initial_current();
      }
    }
  }

  StampContext ctx;
  ctx.analysis = Analysis::kTransient;
  ctx.method = opts.method;
  ctx.time = 0.0;
  ctx.dt = opts.dt;
  ctx.x = &x;
  for (const auto& dev : ckt.devices()) dev->init_history(ctx);

  // ---- Probes. ----
  std::vector<Probe> probes = opts.probes;
  if (probes.empty()) {
    for (NodeId nd = 1; nd < ckt.node_count(); ++nd) {
      probes.push_back(Probe::node_voltage(nd, "v(" + ckt.node_name(nd) + ")"));
    }
  }

  TransientResult res;
  res.labels.reserve(probes.size());
  for (const auto& p : probes) res.labels.push_back(p.label);
  res.signals.assign(probes.size(), {});

  const auto record = [&](double t, const std::vector<double>& sol) {
    if (t + 1e-18 < opts.record_start) return;
    res.time.push_back(t);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      res.signals[i].push_back(eval_probe(probes[i], sol));
    }
  };
  record(0.0, x);

  detail::NewtonSettings ns;
  ns.max_iterations = opts.max_newton;
  ns.reltol = opts.reltol;
  ns.abstol_v = opts.abstol_v;
  ns.abstol_i = opts.abstol_i;
  ns.max_voltage_step = opts.max_voltage_step;

  detail::SolveWorkspace ws;
  double t = 0.0;
  double dt_cur = opts.dt;
  const double dt_min = opts.dt / std::pow(2.0, opts.max_step_halvings);
  int successes_at_reduced_dt = 0;
  long accepted = 0;
  std::vector<double> x_try;
  // History for the LTE predictor: the two previous accepted solutions.
  std::vector<double> x_prev1, x_prev2;
  double dt_prev = opts.dt;

  while (t < opts.tstop - 1e-18 * opts.tstop) {
    dt_cur = std::min(dt_cur, opts.tstop - t);
    const Integrator method_eff = (accepted < opts.be_startup_steps)
                                      ? Integrator::kBackwardEuler
                                      : opts.method;
    ctx.method = method_eff;
    ctx.time = t + dt_cur;
    ctx.dt = dt_cur;

    x_try = x;  // previous solution as the Newton initial guess
    const auto out = detail::newton_solve(ckt, ctx, ns, n_nodes, x_try, ws);
    res.newton_iterations += out.iterations;
    if (!out.converged) {
      res.steps_rejected++;
      dt_cur *= 0.5;
      successes_at_reduced_dt = 0;
      if (dt_cur < dt_min) {
        res.completed = false;
        return res;
      }
      continue;
    }
    // ---- LTE control (opt-in): compare the trapezoidal corrector with a
    //      linear predictor through the two previous accepted points; the
    //      difference scales with the O(dt^3) local truncation error. ----
    if (opts.adaptive_lte && accepted >= opts.be_startup_steps + 2 &&
        !x_prev1.empty() && !x_prev2.empty()) {
      double err = 0.0;
      const double slope_scale = dt_cur / dt_prev;
      for (int i = 0; i < n_nodes; ++i) {
        const double pred =
            x_prev1[i] + (x_prev1[i] - x_prev2[i]) * slope_scale;
        const double e = std::abs(x_try[i] - pred) /
                         (opts.lte_abstol_v +
                          opts.lte_reltol * std::abs(x_try[i]));
        err = std::max(err, e);
      }
      // The predictor difference is ~3x the trapezoidal LTE; normalize so
      // err ~ 1 sits at the tolerance.
      err /= 3.0;
      if (err > 1.0 && dt_cur > dt_min * (1.0 + 1e-12)) {
        res.steps_rejected++;
        dt_cur = std::max(dt_min,
                          dt_cur * std::clamp(0.9 / std::cbrt(err), 0.2, 0.9));
        continue;  // re-solve the step with the smaller dt
      }
      // Accepted: grow toward the base step when the error allows.
      const double grow = err > 0.0 ? 0.9 / std::cbrt(err) : 2.0;
      dt_cur = std::min(opts.dt, dt_cur * std::clamp(grow, 0.5, 2.0));
    }

    // Accept the step.
    x_prev2 = x_prev1;
    x_prev1 = x_try;
    dt_prev = dt_cur;
    x = x_try;
    ctx.x = &x;
    for (const auto& dev : ckt.devices()) dev->commit_step(ctx);
    t = ctx.time;
    ++accepted;
    record(t, x);
    if (!opts.adaptive_lte && dt_cur < opts.dt) {
      if (++successes_at_reduced_dt >= 2) {
        dt_cur = std::min(2.0 * dt_cur, opts.dt);
        successes_at_reduced_dt = 0;
      }
    }
  }
  res.steps_accepted = accepted;
  res.completed = true;
  return res;
}

}  // namespace rlc::spice
