#pragma once

/// Internal shared Newton machinery for the DC and transient analyses.

#include <memory>
#include <vector>

#include "rlc/linalg/sparse.hpp"
#include "rlc/linalg/sparse_lu.hpp"
#include "rlc/spice/circuit.hpp"

namespace rlc::spice::detail {

struct NewtonSettings {
  int max_iterations = 100;
  double reltol = 1e-6;
  double abstol_v = 1e-9;   ///< node-voltage convergence floor [V]
  double abstol_i = 1e-12;  ///< branch-current convergence floor [A]
  double max_voltage_step = 1.0;  ///< per-iteration clamp on node updates [V]
  double gshunt = 1e-12;    ///< node-to-ground conductance for robustness
};

struct NewtonOutcome {
  bool converged = false;
  int iterations = 0;
};

/// Reusable state across Newton iterations and time steps: the cached
/// triplet-to-CSC mapping and the LU factors for numeric-only
/// refactorization (both keyed on the MNA sparsity pattern, which is stable
/// within an analysis).
struct SolveWorkspace {
  rlc::linalg::TripletCompressor compressor;
  std::unique_ptr<rlc::linalg::SparseLU> lu;
  std::vector<rlc::linalg::Triplet> triplets;
  std::vector<double> rhs;
  long full_factorizations = 0;
  long refactorizations = 0;
};

/// Assemble the MNA system at the context's iterate and solve it once,
/// reusing the workspace's symbolic information when the pattern allows.
/// Returns the raw solution of A x = z (not an increment).
std::vector<double> assemble_and_solve(const Circuit& ckt,
                                       const StampContext& ctx, double gshunt,
                                       SolveWorkspace& ws);

/// Newton-Raphson on the circuit equations with the given base context
/// (analysis type, time, dt, gmin, source_scale are taken from `ctx`).
/// `x` holds the initial guess on entry and the solution on success.
NewtonOutcome newton_solve(const Circuit& ckt, StampContext ctx,
                           const NewtonSettings& st, int n_node_unknowns,
                           std::vector<double>& x, SolveWorkspace& ws);

}  // namespace rlc::spice::detail
