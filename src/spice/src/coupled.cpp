#include "rlc/spice/coupled.hpp"

#include <cmath>
#include <stdexcept>

namespace rlc::spice {

// -------------------------------------------------------- MutualInductance

MutualInductance::MutualInductance(std::string name, Inductor& l1,
                                   Inductor& l2, double coupling)
    : Device(std::move(name)), l1_(&l1), l2_(&l2) {
  if (!(std::abs(coupling) < 1.0) || coupling == 0.0) {
    throw std::domain_error(
        "MutualInductance: coupling must be nonzero with |k| < 1");
  }
  m_ = coupling * std::sqrt(l1.inductance() * l2.inductance());
}

void MutualInductance::stamp(const StampContext& ctx, Stamper& st) const {
  if (ctx.analysis == Analysis::kDc) return;  // inductors are DC shorts
  const int br1 = l1_->branch_base();
  const int br2 = l2_->branch_base();
  const bool trap = ctx.method == Integrator::kTrapezoidal;
  const double rm = (trap ? 2.0 : 1.0) * m_ / ctx.dt;
  // Each inductor's branch row gains a -rm * i_other term on the left and
  // the matching history on the right (see Inductor::stamp for the
  // companion derivation; the mutual terms discretize identically).
  st.add(br1, br2, -rm);
  st.add(br2, br1, -rm);
  st.add_rhs(br1, -rm * i2_prev_);
  st.add_rhs(br2, -rm * i1_prev_);
}

void MutualInductance::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  const int br1 = l1_->branch_base();
  const int br2 = l2_->branch_base();
  const std::complex<double> z{0.0, -ctx.omega * m_};
  st.add(br1, br2, z);
  st.add(br2, br1, z);
}

void MutualInductance::commit_step(const StampContext& ctx) {
  i1_prev_ = ctx.unknown(l1_->branch_base());
  i2_prev_ = ctx.unknown(l2_->branch_base());
}

void MutualInductance::init_history(const StampContext& ctx) {
  i1_prev_ = ctx.unknown(l1_->branch_base());
  i2_prev_ = ctx.unknown(l2_->branch_base());
}

// -------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn,
           double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::stamp(const StampContext& ctx, Stamper& st) const {
  (void)ctx;
  const int ip = Stamper::unk(p_), in = Stamper::unk(n_);
  const int icp = Stamper::unk(cp_), icn = Stamper::unk(cn_);
  const int br = branch_base();
  st.add(ip, br, 1.0);
  st.add(in, br, -1.0);
  // Branch equation: v(p) - v(n) - gain (v(cp) - v(cn)) = 0.
  st.add(br, ip, 1.0);
  st.add(br, in, -1.0);
  st.add(br, icp, -gain_);
  st.add(br, icn, gain_);
}

void Vcvs::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  (void)ctx;
  const int ip = Stamper::unk(p_), in = Stamper::unk(n_);
  const int icp = Stamper::unk(cp_), icn = Stamper::unk(cn_);
  const int br = branch_base();
  st.add(ip, br, 1.0);
  st.add(in, br, -1.0);
  st.add(br, ip, 1.0);
  st.add(br, in, -1.0);
  st.add(br, icp, -gain_);
  st.add(br, icn, gain_);
}

// -------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn,
           double gm)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::stamp(const StampContext& ctx, Stamper& st) const {
  (void)ctx;
  const int ip = Stamper::unk(p_), in = Stamper::unk(n_);
  const int icp = Stamper::unk(cp_), icn = Stamper::unk(cn_);
  // Current gm (v(cp) - v(cn)) leaves p and enters n.
  st.add(ip, icp, gm_);
  st.add(ip, icn, -gm_);
  st.add(in, icp, -gm_);
  st.add(in, icn, gm_);
}

void Vccs::stamp_ac(const AcContext& ctx, AcStamper& st) const {
  (void)ctx;
  const int ip = Stamper::unk(p_), in = Stamper::unk(n_);
  const int icp = Stamper::unk(cp_), icn = Stamper::unk(cn_);
  st.add(ip, icp, gm_);
  st.add(ip, icn, -gm_);
  st.add(in, icp, -gm_);
  st.add(in, icn, gm_);
}

}  // namespace rlc::spice
